"""Probability-calibrated confidence (Malik et al. [8] style usage).

§2.2: "Malik et al proposed ... to use the probability of the
mispredictions for the different values of the confidence prediction
counters in order to control fetch gating and SMT fetch policies."
The TAGE observation classes are a natural substrate for this: each
class has a characteristic misprediction probability, so tracking an
online per-class rate turns the 7-class label into a calibrated
probability-of-misprediction — the quantity a graded consumer
(weighted gating, fractional SMT priorities) actually wants.

:class:`ClassRateTracker` keeps an exponential moving average per class
(a handful of small registers — still no tables).
:class:`ReliabilityReport` checks the calibration: predictions binned by
estimated probability versus the observed misprediction frequency, plus
the Brier score.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable

__all__ = ["ClassRateTracker", "ReliabilityReport", "ReliabilityBin"]


class ClassRateTracker:
    """Online per-class misprediction probability via an EMA.

    Args:
        decay: EMA coefficient; the effective window is ~1/(1-decay)
            observations (default ~1000).
        prior: initial probability for a class never observed.
    """

    def __init__(self, decay: float = 0.999, prior: float = 0.05) -> None:
        if not 0.0 < decay < 1.0:
            raise ValueError(f"decay must be in (0, 1), got {decay}")
        if not 0.0 <= prior <= 1.0:
            raise ValueError(f"prior must be in [0, 1], got {prior}")
        self.decay = decay
        self.prior = prior
        self._rates: dict[Hashable, float] = {}
        self._counts: dict[Hashable, int] = {}

    def observe(self, key: Hashable, mispredicted: bool) -> None:
        """Fold one resolved prediction into the class's rate."""
        rate = self._rates.get(key, self.prior)
        self._rates[key] = rate * self.decay + (1.0 - self.decay) * float(mispredicted)
        self._counts[key] = self._counts.get(key, 0) + 1

    def probability(self, key: Hashable) -> float:
        """Current misprediction probability estimate for a class."""
        return self._rates.get(key, self.prior)

    def observations(self, key: Hashable) -> int:
        return self._counts.get(key, 0)

    def table(self) -> dict[Hashable, float]:
        """Snapshot of every tracked class's probability."""
        return dict(self._rates)

    def reset(self) -> None:
        self._rates.clear()
        self._counts.clear()


@dataclass(frozen=True)
class ReliabilityBin:
    """One probability bin of a reliability diagram."""

    lower: float
    upper: float
    count: int
    mean_predicted: float
    observed_rate: float

    @property
    def gap(self) -> float:
        """Calibration gap of the bin (predicted minus observed)."""
        return self.mean_predicted - self.observed_rate


class ReliabilityReport:
    """Reliability diagram + Brier score over (probability, outcome)
    pairs.

    Feed every prediction's estimated misprediction probability and
    whether it actually mispredicted; the report bins by probability and
    compares against the observed frequency.
    """

    def __init__(self, n_bins: int = 10) -> None:
        if n_bins <= 0:
            raise ValueError(f"n_bins must be positive, got {n_bins}")
        self.n_bins = n_bins
        self._counts = [0] * n_bins
        self._prob_sums = [0.0] * n_bins
        self._miss_sums = [0] * n_bins
        self._brier_sum = 0.0
        self._total = 0

    def observe(self, probability: float, mispredicted: bool) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        bin_index = min(int(probability * self.n_bins), self.n_bins - 1)
        self._counts[bin_index] += 1
        self._prob_sums[bin_index] += probability
        self._miss_sums[bin_index] += int(mispredicted)
        self._brier_sum += (probability - float(mispredicted)) ** 2
        self._total += 1

    @property
    def total(self) -> int:
        return self._total

    def brier_score(self) -> float:
        """Mean squared error of the probability estimates (0 = perfect)."""
        return self._brier_sum / self._total if self._total else 0.0

    def bins(self) -> list[ReliabilityBin]:
        """Non-empty bins of the reliability diagram."""
        result = []
        width = 1.0 / self.n_bins
        for index in range(self.n_bins):
            count = self._counts[index]
            if count == 0:
                continue
            result.append(
                ReliabilityBin(
                    lower=index * width,
                    upper=(index + 1) * width,
                    count=count,
                    mean_predicted=self._prob_sums[index] / count,
                    observed_rate=self._miss_sums[index] / count,
                )
            )
        return result

    def expected_calibration_error(self) -> float:
        """Count-weighted mean absolute calibration gap (ECE)."""
        if self._total == 0:
            return 0.0
        return sum(abs(b.gap) * b.count for b in self.bins()) / self._total

    def render(self) -> str:
        """ASCII reliability diagram."""
        lines = [f"reliability over {self._total} predictions, "
                 f"Brier {self.brier_score():.4f}, ECE {self.expected_calibration_error():.4f}"]
        for b in self.bins():
            lines.append(
                f"  [{b.lower:4.2f},{b.upper:4.2f})  n={b.count:<7} "
                f"predicted={b.mean_predicted:.3f}  observed={b.observed_rate:.3f}"
            )
        return "\n".join(lines)


def calibrate_simulation(trace, predictor, estimator, tracker=None, n_bins=10):
    """Run a trace while calibrating per-class probabilities online.

    Convenience driver used by the calibration example and tests:
    classifies each prediction, asks the tracker for the class's current
    probability, records it into a :class:`ReliabilityReport`, then
    feeds the outcome back.

    Returns (tracker, report).
    """
    tracker = tracker or ClassRateTracker()
    report = ReliabilityReport(n_bins=n_bins)
    for pc, taken_byte in zip(trace.pcs, trace.takens):
        taken = taken_byte == 1
        prediction = predictor.predict(pc)
        observation = predictor.last_prediction
        prediction_class = estimator.classify(observation)
        mispredicted = prediction != taken
        report.observe(tracker.probability(prediction_class), mispredicted)
        tracker.observe(prediction_class, mispredicted)
        estimator.observe(observation, taken)
        predictor.train(pc, taken)
    return tracker, report
