"""Load generation and measurement for the confidence server.

The driver replays deterministic request streams — any registered trace
source name resolves through :func:`repro.sim.runner.get_trace`, so CBP
suites, the scenario zoo and ``file:<path>`` replays all drive the
server — and reports what the HPC-workload-characterization literature
asks for: latency *percentiles* and throughput/saturation *curves*, not
single averages.

Two load modes:

* **closed loop** — ``n`` concurrent clients, each on its own tenant,
  sending the next batch only when the previous reply arrives.  Offered
  load tracks service capacity; sweeping the client count yields the
  saturation curve (throughput flattens while latency climbs once the
  server's one core is busy).  With ``retries > 0`` (CLI:
  ``repro drive --retries``), REJECTED/TIMEOUT replies — which mean the
  batch was not applied — are re-sent with capped backoff before being
  counted as losses; re-sends are tallied per point.
* **open loop** — batches are injected at a fixed arrival *rate*,
  regardless of completions, pipelined over the connections.  Latency
  is measured from the scheduled arrival time (not the actual send), so
  queueing delay during overload is charged to the server — the
  coordinated-omission-free measurement.  Rejects and timeouts are
  counted, not retried.

:func:`differential_check` is the serving layer's correctness anchor: a
trace replayed through a fresh tenant must produce the bit-identical
per-branch (prediction, confidence) stream and aggregate counts as the
offline reference engine for the same (predictor, estimator, trace)
cell.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

from repro.confidence.classes import confidence_level_of
from repro.serve.client import (
    DecisionStream,
    ServeClient,
    ServeError,
    ServeRejected,
    ServeTimeout,
)
from repro.serve.state import SessionSpec, TenantSession, _CODE_OF_CLASS
from repro.sim.engine import simulate, simulate_binary
from repro.sim.observe import observe_trace
from repro.sim.runner import get_trace

__all__ = [
    "DriveConfig",
    "DrivePoint",
    "DriveReport",
    "DifferentialMismatchError",
    "percentile",
    "drive",
    "run_drive",
    "offline_decisions",
    "differential_check",
    "run_differential_check",
]


def percentile(samples, q: float) -> float:
    """Nearest-rank percentile of an unsorted sample list (q in [0, 100])."""
    if not samples:
        return 0.0
    if not 0 <= q <= 100:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    ordered = sorted(samples)
    rank = max(1, -(-len(ordered) * q // 100))  # ceil without math import
    return ordered[int(rank) - 1]


@dataclass(frozen=True)
class DriveConfig:
    """One driver invocation: where, what and how hard.

    ``clients`` is the closed-loop concurrency sweep (one saturation
    point per entry); ``rates`` is the open-loop arrival-rate sweep in
    batches/second.  Tenants are derived per point and per client from
    ``tenant_prefix``, so every point starts from power-on state.
    """

    host: str = "127.0.0.1"
    port: int = 7421
    trace: str = "INT-1"
    n_branches: int = 20_000
    predictor: str = "tage-16K"
    estimator: str = "tage"
    adaptive: bool = False
    target_mkp: float = 10.0
    seed: int | None = None
    mode: str = "closed"
    clients: tuple[int, ...] = (1, 2, 4)
    rates: tuple[float, ...] = (50.0,)
    batch_size: int = 256
    tenant_prefix: str = "drive"
    connect_timeout: float = 5.0
    retries: int = 0

    def __post_init__(self) -> None:
        if self.mode not in ("closed", "open"):
            raise ValueError(f"mode must be 'closed' or 'open', got {self.mode!r}")
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.n_branches < 1:
            raise ValueError(f"n_branches must be >= 1, got {self.n_branches}")
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.mode == "closed" and not all(n >= 1 for n in self.clients):
            raise ValueError(f"client counts must be >= 1, got {self.clients}")
        if self.mode == "open" and not all(r > 0 for r in self.rates):
            raise ValueError(f"arrival rates must be positive, got {self.rates}")
        # Fail on a bad predictor/estimator/adaptive combination here,
        # before any connection is attempted — SessionSpec validates
        # the cell eagerly.
        self.session_spec("probe")

    def session_spec(self, tenant: str) -> SessionSpec:
        return SessionSpec(
            tenant=tenant,
            predictor=self.predictor,
            estimator=self.estimator,
            adaptive=self.adaptive,
            target_mkp=self.target_mkp,
            seed=self.seed,
        )


@dataclass(frozen=True)
class DrivePoint:
    """One measured load point of the throughput/saturation curve."""

    mode: str
    clients: int
    rate: float | None          # offered batches/s (open loop only)
    n_requests: int             # answered observe batches
    n_records: int              # branch records applied
    n_rejected: int
    n_timed_out: int
    n_retries: int              # re-sent batches (closed loop, --retries)
    elapsed: float              # wall seconds for the point
    p50_ms: float
    p95_ms: float
    p99_ms: float
    mean_ms: float

    @property
    def throughput_rps(self) -> float:
        """Applied branch records per second."""
        if self.elapsed <= 0:
            return 0.0
        return self.n_records / self.elapsed

    @property
    def requests_per_s(self) -> float:
        if self.elapsed <= 0:
            return 0.0
        return self.n_requests / self.elapsed

    def as_dict(self) -> dict:
        return {
            "mode": self.mode,
            "clients": self.clients,
            "rate": self.rate,
            "n_requests": self.n_requests,
            "n_records": self.n_records,
            "n_rejected": self.n_rejected,
            "n_timed_out": self.n_timed_out,
            "n_retries": self.n_retries,
            "elapsed_s": self.elapsed,
            "throughput_rps": self.throughput_rps,
            "requests_per_s": self.requests_per_s,
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "p99_ms": self.p99_ms,
            "mean_ms": self.mean_ms,
        }


@dataclass
class DriveReport:
    """A full driver run: the swept load points plus their common cell."""

    trace: str
    predictor: str
    estimator: str
    n_branches: int
    batch_size: int
    mode: str
    points: list[DrivePoint] = field(default_factory=list)

    @property
    def peak_throughput_rps(self) -> float:
        return max((p.throughput_rps for p in self.points), default=0.0)

    def as_dict(self) -> dict:
        return {
            "trace": self.trace,
            "predictor": self.predictor,
            "estimator": self.estimator,
            "n_branches": self.n_branches,
            "batch_size": self.batch_size,
            "mode": self.mode,
            "peak_throughput_rps": self.peak_throughput_rps,
            "points": [point.as_dict() for point in self.points],
        }


def _split_batches(trace, batch_size: int):
    """The trace as (pcs, takens) request batches, in trace order."""
    pcs = trace.pcs
    takens = trace.takens
    return [
        (pcs[start:start + batch_size], takens[start:start + batch_size])
        for start in range(0, len(trace), batch_size)
    ]


async def _closed_client(config, tenant, batches, latencies, counts):
    client = await ServeClient.connect(
        config.host, config.port, config.connect_timeout,
        max_retries=config.retries,
    )
    loop = asyncio.get_running_loop()
    try:
        await client.hello(config.session_spec(tenant))
        for pcs, takens in batches:
            started = loop.time()
            try:
                await client.observe(pcs, takens)
            except ServeRejected:
                counts["rejected"] += 1
                continue
            except ServeTimeout:
                counts["timed_out"] += 1
                continue
            latencies.append(loop.time() - started)
            counts["requests"] += 1
            counts["records"] += len(pcs)
    finally:
        counts["retries"] += client.n_retries
        await client.close()


async def _closed_point(config, batches, n_clients, point_label) -> DrivePoint:
    loop = asyncio.get_running_loop()
    latencies: list[float] = []
    counts = {"requests": 0, "records": 0, "rejected": 0, "timed_out": 0,
              "retries": 0}
    started = loop.time()
    await asyncio.gather(*(
        _closed_client(
            config, f"{config.tenant_prefix}.{point_label}.{index}",
            batches, latencies, counts,
        )
        for index in range(n_clients)
    ))
    elapsed = loop.time() - started
    return _make_point(
        "closed", n_clients, None, counts, latencies, elapsed
    )


async def _open_client(config, tenant, assigned, epoch, rate, latencies, counts):
    """One pipelined open-loop connection.

    ``assigned`` is this client's list of (global_index, batch); batch
    ``j`` is scheduled at ``epoch + j / rate`` regardless of earlier
    completions, and its latency is measured from that scheduled time.
    """
    client = await ServeClient.connect(
        config.host, config.port, config.connect_timeout
    )
    loop = asyncio.get_running_loop()
    scheduled: asyncio.Queue = asyncio.Queue()

    async def sender():
        for global_index, (pcs, takens) in assigned:
            target = epoch + global_index / rate
            delay = target - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            await client.send_observe(pcs, takens)
            scheduled.put_nowait((target, len(pcs)))

    async def receiver():
        for _ in assigned:
            target, n_records = await scheduled.get()
            try:
                await client.recv_result()
            except ServeRejected:
                counts["rejected"] += 1
                continue
            except ServeTimeout:
                counts["timed_out"] += 1
                continue
            latencies.append(loop.time() - target)
            counts["requests"] += 1
            counts["records"] += n_records

    try:
        await client.hello(config.session_spec(tenant))
        sender_task = asyncio.ensure_future(sender())
        try:
            await receiver()
        finally:
            await sender_task
    finally:
        await client.close()


async def _open_point(config, batches, rate, point_label) -> DrivePoint:
    loop = asyncio.get_running_loop()
    latencies: list[float] = []
    counts = {"requests": 0, "records": 0, "rejected": 0, "timed_out": 0,
              "retries": 0}
    n_clients = max(1, min(len(config.clients) and max(config.clients), len(batches)))
    assignments = [
        [(j, batches[j]) for j in range(index, len(batches), n_clients)]
        for index in range(n_clients)
    ]
    epoch = loop.time()
    await asyncio.gather(*(
        _open_client(
            config, f"{config.tenant_prefix}.{point_label}.{index}",
            assignment, epoch, rate, latencies, counts,
        )
        for index, assignment in enumerate(assignments)
        if assignment
    ))
    elapsed = loop.time() - epoch
    return _make_point("open", n_clients, rate, counts, latencies, elapsed)


def _make_point(mode, clients, rate, counts, latencies, elapsed) -> DrivePoint:
    return DrivePoint(
        mode=mode,
        clients=clients,
        rate=rate,
        n_requests=counts["requests"],
        n_records=counts["records"],
        n_rejected=counts["rejected"],
        n_timed_out=counts["timed_out"],
        n_retries=counts["retries"],
        elapsed=elapsed,
        p50_ms=percentile(latencies, 50) * 1000.0,
        p95_ms=percentile(latencies, 95) * 1000.0,
        p99_ms=percentile(latencies, 99) * 1000.0,
        mean_ms=(sum(latencies) / len(latencies) * 1000.0) if latencies else 0.0,
    )


async def drive(config: DriveConfig) -> DriveReport:
    """Run the configured load sweep; one :class:`DrivePoint` per step."""
    trace = get_trace(config.trace, config.n_branches)
    batches = _split_batches(trace, config.batch_size)
    report = DriveReport(
        trace=config.trace,
        predictor=config.predictor,
        estimator=config.estimator,
        n_branches=len(trace),
        batch_size=config.batch_size,
        mode=config.mode,
    )
    if config.mode == "closed":
        for n_clients in config.clients:
            report.points.append(await _closed_point(
                config, batches, n_clients, f"c{n_clients}"
            ))
    else:
        for index, rate in enumerate(config.rates):
            report.points.append(await _open_point(
                config, batches, rate, f"r{index}"
            ))
    return report


def run_drive(config: DriveConfig) -> DriveReport:
    """Synchronous entry point for :func:`drive` (CLI, benches)."""
    return asyncio.run(drive(config))


# ---------------------------------------------------------------------------
# Served-vs-offline differential check.
# ---------------------------------------------------------------------------


class DifferentialMismatchError(AssertionError):
    """The served decision stream diverged from the offline replay."""


def offline_decisions(spec: SessionSpec, trace) -> DecisionStream:
    """The offline reference engine's per-branch decision stream.

    Multi-class non-adaptive cells go through
    :func:`repro.sim.observe.observe_trace` (the reference engine's
    recording loop); adaptive and binary cells replay the matching
    reference loop here, mirroring :func:`repro.sim.engine.simulate` /
    :func:`simulate_binary` step order exactly.
    """
    stream = DecisionStream(tenant=spec.tenant)
    session = TenantSession(spec)  # offline component construction twin
    predictor, estimator = session.predictor, session.estimator
    if spec.estimator_spec.kind == "tage" and not spec.adaptive:
        observed = observe_trace(trace, predictor, estimator, backend="reference")
        stream.predictions = list(observed.predictions)
        stream.codes = list(observed.class_codes)
        return stream
    predict = predictor.predict
    train = predictor.train
    if spec.is_binary:
        assess = estimator.assess
        observe = estimator.observe
        for pc, taken_byte in zip(trace.pcs, trace.takens):
            taken = taken_byte == 1
            prediction = predict(pc)
            stream.predictions.append(prediction)
            stream.codes.append(1 if assess(pc, prediction) else 0)
            observe(pc, prediction, taken)
            train(pc, taken)
        return stream
    classify = estimator.classify
    observe = estimator.observe
    controller = session.controller
    code_of = _CODE_OF_CLASS
    for pc, taken_byte in zip(trace.pcs, trace.takens):
        taken = taken_byte == 1
        prediction = predict(pc)
        observation = predictor.last_prediction
        prediction_class = classify(observation)
        stream.predictions.append(prediction)
        stream.codes.append(code_of[prediction_class])
        observe(observation, taken)
        if controller is not None:
            controller.observe(
                confidence_level_of(prediction_class), prediction != taken
            )
        train(pc, taken)
    return stream


async def differential_check(
    host: str,
    port: int,
    spec: SessionSpec,
    trace_name: str,
    n_branches: int,
    batch_size: int = 256,
    connect_timeout: float = 5.0,
) -> dict:
    """Bit-identity of served vs offline decisions for one cell.

    Replays ``trace_name`` through a fresh tenant on the server and
    through the offline reference engine, then compares the per-branch
    (prediction, confidence-code) streams exactly — and the aggregate
    misprediction/class counts against :func:`repro.sim.engine.simulate`
    (or :func:`simulate_binary`) for the same cell.

    Returns the aggregate accounting on success; raises
    :class:`DifferentialMismatchError` naming the first divergent branch
    otherwise.
    """
    trace = get_trace(trace_name, n_branches)
    offline = offline_decisions(spec, trace)

    client = await ServeClient.connect(host, port, connect_timeout)
    try:
        await client.hello(spec)
        served = await client.replay(trace, batch_size=batch_size)
        stats = await client.close()
    except ServeError:
        await client.abort()
        raise
    if len(served) != len(offline):
        raise DifferentialMismatchError(
            f"served {len(served)} decisions, offline {len(offline)}"
        )
    for index, (sp, so, op, oc) in enumerate(zip(
        served.predictions, served.codes, offline.predictions, offline.codes
    )):
        if sp != op or so != oc:
            raise DifferentialMismatchError(
                f"branch {index}: served (prediction={sp}, code={so}) != "
                f"offline (prediction={op}, code={oc})"
            )

    # Aggregate cross-check against the offline engines proper.
    mispredictions = sum(
        prediction != (taken == 1)
        for prediction, taken in zip(served.predictions, trace.takens)
    )
    session = TenantSession(spec)
    if spec.is_binary:
        _, result = simulate_binary(
            trace, session.predictor, session.estimator, backend="reference"
        )
    else:
        result = simulate(
            trace,
            session.predictor,
            estimator=session.estimator,
            controller=session.controller,
            backend="reference",
        )
    if mispredictions != result.mispredictions:
        raise DifferentialMismatchError(
            f"served stream implies {mispredictions} mispredictions, "
            f"offline simulate reports {result.mispredictions}"
        )
    if stats and stats.get("mispredictions") not in (None, mispredictions):
        raise DifferentialMismatchError(
            f"server-side accounting reports {stats.get('mispredictions')} "
            f"mispredictions, stream implies {mispredictions}"
        )
    return {
        "trace": trace_name,
        "n_branches": len(trace),
        "mispredictions": mispredictions,
        "mpki": result.mpki,
    }


def run_differential_check(*args, **kwargs) -> dict:
    """Synchronous wrapper over :func:`differential_check`."""
    return asyncio.run(differential_check(*args, **kwargs))
