"""Asyncio client for the confidence server.

:class:`ServeClient` speaks the wire protocol of
:mod:`repro.serve.protocol`.  The two usage shapes:

* **call-and-wait** (:meth:`ServeClient.observe`) — one batch per round
  trip; the replay helpers and the closed-loop driver use this;
* **pipelined** (:meth:`ServeClient.send_observe` +
  :meth:`ServeClient.recv_result`) — many batches in flight on one
  connection; responses come back in request order (a protocol
  guarantee), which is what the open-loop driver and the fault tests
  exploit.

Server error frames surface as typed exceptions
(:class:`ServeRejected`, :class:`ServeTimeout`, :class:`ServeDraining`,
:class:`ServeBadRequest`) so callers can distinguish admission-control
replies from real failures.

Admission-control replies are *safe to retry*: REJECTED and TIMEOUT
both mean the batch was **not applied** to the session, so re-sending
the identical batch cannot double-count branches.  Construct the client
with ``max_retries > 0`` (CLI: ``repro drive --retries N``) and
:meth:`ServeClient.observe` transparently retries those two errors with
capped exponential backoff and deterministic jitter; everything else
(DRAINING, BAD_REQUEST, connection loss) still raises immediately.
"""

from __future__ import annotations

import asyncio
import zlib
from dataclasses import dataclass, field

from repro.serve import protocol
from repro.serve.state import SessionSpec

__all__ = [
    "ServeError",
    "ServeRejected",
    "ServeTimeout",
    "ServeDraining",
    "ServeBadRequest",
    "DecisionStream",
    "ServeClient",
    "retry_delay",
]


class ServeError(RuntimeError):
    """An ERROR frame from the server (or a broken conversation)."""

    def __init__(self, code: int, message: str) -> None:
        super().__init__(
            f"{protocol.ERROR_NAMES.get(code, code)}: {message}"
        )
        self.code = code
        self.message = message


class ServeRejected(ServeError):
    """Tenant admission queue full — the batch was not applied."""


class ServeTimeout(ServeError):
    """The request missed its server-side deadline — not applied."""


class ServeDraining(ServeError):
    """The server is shutting down gracefully."""


class ServeBadRequest(ServeError):
    """The server rejected the request as malformed/out-of-order."""


_ERROR_TYPES = {
    protocol.ERR_REJECTED: ServeRejected,
    protocol.ERR_TIMEOUT: ServeTimeout,
    protocol.ERR_DRAINING: ServeDraining,
    protocol.ERR_BAD_REQUEST: ServeBadRequest,
}


def _error_from_frame(payload: bytes) -> ServeError:
    code, message = protocol.decode_error(payload)
    return _ERROR_TYPES.get(code, ServeError)(code, message)


@dataclass
class DecisionStream:
    """A served trace's per-branch decisions, in trace order.

    ``codes`` are §5 observation-class codes (multi-class sessions) or
    high-confidence flags (binary sessions) — exactly the server's
    RESULTS columns, concatenated across batches.
    """

    tenant: str
    predictions: list[bool] = field(default_factory=list)
    codes: list[int] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.codes)

    def extend(self, predictions: bytes, codes: bytes) -> None:
        self.predictions.extend(byte == 1 for byte in predictions)
        self.codes.extend(codes)

    @property
    def mispredicted_against(self):
        """``lambda takens: [...]`` — misprediction flags vs. a taken column."""
        def compare(takens):
            return [
                prediction != (taken == 1)
                for prediction, taken in zip(self.predictions, takens)
            ]
        return compare


def retry_delay(tenant: str, sequence: int, attempt: int,
                base: float = 0.05, cap: float = 1.0) -> float:
    """Capped exponential backoff with deterministic jitter.

    Jitter derives from (tenant, request sequence, attempt), so many
    tenants rejected by the same admission wave spread their retries out
    instead of re-colliding — yet every schedule is reproducible.
    """
    delay = min(cap, base * (2.0 ** attempt))
    frac = (zlib.crc32(f"{tenant}:{sequence}:{attempt}".encode())
            & 0xFFFFFFFF) / 0xFFFFFFFF
    return delay * (0.5 + 0.5 * frac)


class ServeClient:
    """One connection to a :class:`~repro.serve.server.ConfidenceServer`.

    Args:
        max_retries: how many times :meth:`observe` re-sends a batch the
            server answered with REJECTED or TIMEOUT (both mean "not
            applied").  0 — the default — preserves fail-fast behaviour.
        retry_base: first-retry backoff in seconds.
        retry_cap: backoff ceiling in seconds.
    """

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter,
        max_retries: int = 0, retry_base: float = 0.05,
        retry_cap: float = 1.0,
    ) -> None:
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self._reader = reader
        self._writer = writer
        self.session: SessionSpec | None = None
        self.max_retries = max_retries
        self.retry_base = retry_base
        self.retry_cap = retry_cap
        #: Batches that eventually succeeded only after >= 1 retry, and
        #: total retry sends — the driver reports both.
        self.n_retried_batches = 0
        self.n_retries = 0
        self._sequence = 0

    @classmethod
    async def connect(
        cls, host: str, port: int, connect_timeout: float = 5.0,
        max_retries: int = 0, retry_base: float = 0.05,
        retry_cap: float = 1.0,
    ) -> "ServeClient":
        """Connect, retrying until ``connect_timeout`` elapses.

        The retry loop makes "start the server, then drive it" scripts
        (CI smoke, the CLI) robust without a separate port-polling step.
        """
        loop = asyncio.get_running_loop()
        deadline = loop.time() + connect_timeout
        while True:
            try:
                reader, writer = await asyncio.open_connection(host, port)
                return cls(reader, writer, max_retries=max_retries,
                           retry_base=retry_base, retry_cap=retry_cap)
            except (ConnectionError, OSError):
                if loop.time() >= deadline:
                    raise
                await asyncio.sleep(0.05)

    # -- conversation --------------------------------------------------

    async def hello(self, spec: SessionSpec) -> dict:
        """Open (or re-attach to) the tenant session; server's HELLO_OK."""
        await self._send(protocol.MSG_HELLO, protocol.encode_json(spec.as_dict()))
        msg_type, payload = await self._recv()
        if msg_type == protocol.MSG_ERROR:
            raise _error_from_frame(payload)
        if msg_type != protocol.MSG_HELLO_OK:
            raise ServeError(
                protocol.ERR_INTERNAL, f"unexpected reply {msg_type:#x} to hello"
            )
        self.session = spec
        return protocol.decode_json(payload)

    async def observe(self, pcs, takens) -> tuple[bytes, bytes]:
        """One batched observe round trip → ``(predictions, codes)``.

        With ``max_retries > 0``, REJECTED/TIMEOUT replies — which
        guarantee the batch was not applied — are retried with capped
        exponential backoff + deterministic jitter before surfacing.
        The pipelined halves (:meth:`send_observe`/:meth:`recv_result`)
        never retry: in-flight ordering makes a re-send ambiguous there.
        """
        tenant = self.session.tenant if self.session else ""
        sequence = self._sequence
        self._sequence += 1
        attempt = 0
        while True:
            try:
                await self.send_observe(pcs, takens)
                result = await self.recv_result()
            except (ServeRejected, ServeTimeout):
                if attempt >= self.max_retries:
                    raise
                await asyncio.sleep(retry_delay(
                    tenant, sequence, attempt,
                    base=self.retry_base, cap=self.retry_cap,
                ))
                attempt += 1
                self.n_retries += 1
            else:
                if attempt:
                    self.n_retried_batches += 1
                return result

    async def send_observe(self, pcs, takens) -> None:
        """Pipelined send half of :meth:`observe`."""
        await self._send(
            protocol.MSG_OBSERVE, protocol.pack_observe(pcs, takens)
        )

    async def recv_result(self) -> tuple[bytes, bytes]:
        """Pipelined receive half; raises typed errors on ERROR frames."""
        msg_type, payload = await self._recv()
        if msg_type == protocol.MSG_ERROR:
            raise _error_from_frame(payload)
        if msg_type != protocol.MSG_RESULTS:
            raise ServeError(
                protocol.ERR_INTERNAL,
                f"unexpected reply {msg_type:#x} to observe",
            )
        return protocol.unpack_results(payload)

    async def replay(self, trace, batch_size: int = 512) -> DecisionStream:
        """Stream a whole trace through the session, batch by batch."""
        if self.session is None:
            raise ServeError(protocol.ERR_BAD_REQUEST, "replay before hello")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        stream = DecisionStream(tenant=self.session.tenant)
        pcs = trace.pcs
        takens = trace.takens
        for start in range(0, len(trace), batch_size):
            predictions, codes = await self.observe(
                pcs[start:start + batch_size], takens[start:start + batch_size]
            )
            stream.extend(predictions, codes)
        return stream

    async def close(self) -> dict:
        """Polite goodbye; returns the server's session accounting."""
        try:
            await self._send(protocol.MSG_CLOSE)
            msg_type, payload = await self._recv()
            stats = (
                protocol.decode_json(payload)
                if msg_type == protocol.MSG_CLOSED
                else {}
            )
        except (ConnectionError, OSError, ServeError):
            stats = {}
        await self.abort()
        return stats

    async def abort(self) -> None:
        """Drop the connection without protocol goodbyes."""
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    # -- plumbing ------------------------------------------------------

    async def _send(self, msg_type: int, payload: bytes = b"") -> None:
        self._writer.write(protocol.encode_frame(msg_type, payload))
        await self._writer.drain()

    async def _recv(self) -> tuple[int, bytes]:
        frame = await protocol.read_frame(self._reader)
        if frame is None:
            raise ServeError(
                protocol.ERR_INTERNAL, "server closed the connection"
            )
        return frame
