"""Confidence-as-a-service: the serving layer.

The paper's estimators are pure functions over branch streams, so they
serve naturally: a long-running asyncio server
(:class:`~repro.serve.server.ConfidenceServer`) holds sharded per-tenant
predictor + estimator state behind a small length-prefixed wire protocol
(:mod:`repro.serve.protocol`) — "observe a batch of branches, get back
each branch's prediction and confidence class" — and a load-driving
client (:mod:`repro.serve.driver`) measures it with open- and
closed-loop modes, latency percentiles and throughput/saturation curves.

Layering:

* :mod:`repro.serve.protocol` — frames, message types, error codes;
* :mod:`repro.serve.state` — :class:`SessionSpec` (the wire-facing cell
  description, built on the sweep layer's predictor/estimator specs) and
  :class:`TenantSession` (the live per-tenant replica of the reference
  engine's per-branch loop);
* :mod:`repro.serve.server` — the asyncio server: tenant → shard
  routing, per-tenant admission control with explicit rejects, request
  timeouts, graceful drain;
* :mod:`repro.serve.client` — the asyncio client (pipelined or
  call-and-wait) plus trace replay;
* :mod:`repro.serve.driver` — open/closed-loop load generation from any
  registered trace source, percentile reporting, saturation curves and
  the served-vs-offline differential check.

The serving hot path is bit-identical to the offline engines: a served
trace's per-branch (prediction, confidence class) stream equals the
reference :func:`repro.sim.engine.simulate` replay of the same
(predictor, estimator, trace) cell — enforced by
:func:`repro.serve.driver.differential_check` and the CI serving smoke.
"""

from repro.serve.client import (
    DecisionStream,
    ServeBadRequest,
    ServeClient,
    ServeDraining,
    ServeError,
    ServeRejected,
    ServeTimeout,
)
from repro.serve.driver import (
    DifferentialMismatchError,
    DriveConfig,
    DrivePoint,
    DriveReport,
    differential_check,
    drive,
    offline_decisions,
    run_differential_check,
    run_drive,
)
from repro.serve.protocol import ProtocolError
from repro.serve.server import ConfidenceServer, ServerConfig, running_server
from repro.serve.state import SessionSpec, TenantSession

__all__ = [
    "ConfidenceServer",
    "ServerConfig",
    "SessionSpec",
    "TenantSession",
    "ServeClient",
    "DecisionStream",
    "ServeError",
    "ServeRejected",
    "ServeTimeout",
    "ServeDraining",
    "ServeBadRequest",
    "ProtocolError",
    "running_server",
    "DriveConfig",
    "DrivePoint",
    "DriveReport",
    "drive",
    "run_drive",
    "differential_check",
    "run_differential_check",
    "DifferentialMismatchError",
    "offline_decisions",
]
