"""Per-tenant serving state.

A tenant session is the live, server-held replica of one offline
simulation cell: a predictor plus a confidence estimator (and the §6.2
adaptive controller when requested), advanced one observed branch at a
time in exactly the reference engine's per-branch step order — predict,
classify/assess, observe, (controller,) train.  Because the step order
and component construction both match the sweep layer
(:func:`repro.sweep.executor.build_cell_predictor` et al.), a served
trace's per-branch decision stream is bit-identical to the offline
:func:`repro.sim.engine.simulate` / :func:`simulate_binary` replay of
the same (predictor, estimator, trace) cell — the property
:func:`repro.serve.driver.differential_check` enforces.

:class:`SessionSpec` is the wire-facing description of such a cell: the
CLI predictor token (``tage-16K``, ``gshare``, …), the estimator kind
(``tage``/``jrs``/``ejrs``/``self``) and the scalar options a sweep cell
carries (seed, adaptive, target MKP).  It validates eagerly so a bad
HELLO is rejected before any state is allocated.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.confidence.adaptive import AdaptiveSaturationController
from repro.confidence.estimator import TageConfidenceEstimator
from repro.confidence.classes import confidence_level_of
from repro.sim.backends import Capability, Cell, get_backend
from repro.sim.observe import OBSERVATION_CLASS_CODES
from repro.sweep.executor import build_cell_binary_estimator, build_cell_predictor
from repro.sweep.spec import EstimatorSpec, PredictorSpec

__all__ = ["SessionSpec", "TenantSession"]

_CODE_OF_CLASS = {
    prediction_class: code
    for code, prediction_class in enumerate(OBSERVATION_CLASS_CODES)
}


@dataclass(frozen=True)
class SessionSpec:
    """One tenant's cell description, as carried by the HELLO payload.

    Attributes:
        tenant: tenant identity — routing key, admission-control scope
            and state namespace, all at once.
        predictor: CLI predictor token (``tage-<SIZE>[-prob]``,
            ``gshare``, ``bimodal``, ``perceptron``, ``ogehl``,
            ``local``).
        estimator: estimator kind (``tage`` for the paper's multi-class
            observation, ``jrs``/``ejrs``/``self`` for the binary
            baselines).
        adaptive: attach the §6.2 adaptive saturation controller
            (``tage`` estimator on a TAGE predictor only; forces the
            probabilistic automaton like the sweep layer does).
        target_mkp: adaptive controller target.
        seed: per-session RNG seed, derived exactly like a sweep job's
            (``None`` keeps each component's built-in seeds).
    """

    tenant: str
    predictor: str = "tage-64K"
    estimator: str = "tage"
    adaptive: bool = False
    target_mkp: float = 10.0
    seed: int | None = None

    def __post_init__(self) -> None:
        if not self.tenant or any(c.isspace() for c in self.tenant):
            raise ValueError(f"invalid tenant name {self.tenant!r}")
        predictor = PredictorSpec.parse(self.predictor)  # raises on bad token
        estimator = EstimatorSpec.of(self.estimator)
        if not estimator.compatible_with(predictor):
            raise ValueError(
                f"estimator {self.estimator!r} cannot observe predictor "
                f"{self.predictor!r}"
            )
        if self.adaptive and (estimator.kind != "tage" or predictor.kind != "tage"):
            raise ValueError(
                "adaptive control needs a TAGE predictor with the 'tage' "
                f"observation estimator, got {self.predictor!r} x {self.estimator!r}"
            )

    @property
    def predictor_spec(self) -> PredictorSpec:
        return PredictorSpec.parse(self.predictor)

    @property
    def estimator_spec(self) -> EstimatorSpec:
        return EstimatorSpec.of(self.estimator)

    @property
    def is_binary(self) -> bool:
        """Binary high/low sessions return the confidence flag as code."""
        return self.estimator_spec.is_binary

    def capability(self, backend: str = "fast") -> Capability:
        """The named backend's verdict for this session's offline twin.

        Builds the session's components exactly as :class:`TenantSession`
        would and asks :meth:`repro.sim.backends.Backend.capability` —
        the same single decision point the sweep executor and the
        ``simulate`` dispatchers use — so a served cell and its offline
        differential-check replay can never disagree about backend
        support.
        """
        predictor = build_cell_predictor(
            self.predictor_spec, adaptive=self.adaptive, seed=self.seed
        )
        if self.estimator_spec.kind == "tage":
            controller = (
                AdaptiveSaturationController(predictor, target_mkp=self.target_mkp)
                if self.adaptive
                else None
            )
            cell = Cell(
                predictor=predictor,
                estimator=TageConfidenceEstimator(predictor),
                controller=controller,
            )
        else:
            cell = Cell(
                predictor=predictor,
                estimator=build_cell_binary_estimator(
                    self.estimator_spec, predictor
                ),
                binary=True,
            )
        return get_backend(backend).capability(cell)

    def as_dict(self) -> dict:
        """Plain-data wire form (the HELLO payload)."""
        return {
            "tenant": self.tenant,
            "predictor": self.predictor,
            "estimator": self.estimator,
            "adaptive": self.adaptive,
            "target_mkp": self.target_mkp,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SessionSpec":
        """Validated spec from a decoded HELLO payload."""
        known = {"tenant", "predictor", "estimator", "adaptive", "target_mkp", "seed"}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown session fields {sorted(unknown)}")
        if "tenant" not in payload:
            raise ValueError("session spec needs a 'tenant' field")
        return cls(**payload)


class TenantSession:
    """Live predictor + estimator state for one tenant.

    All mutation happens through :meth:`observe_batch`, which the server
    calls from exactly one shard worker — per-tenant serialization is a
    routing property, so the session itself needs no locking.
    """

    def __init__(self, spec: SessionSpec) -> None:
        self.spec = spec
        predictor_spec = spec.predictor_spec
        self.predictor = build_cell_predictor(
            predictor_spec, adaptive=spec.adaptive, seed=spec.seed
        )
        self.controller = None
        if spec.estimator_spec.kind == "tage":
            self.estimator = TageConfidenceEstimator(self.predictor)
            if spec.adaptive:
                self.controller = AdaptiveSaturationController(
                    self.predictor, target_mkp=spec.target_mkp
                )
        else:
            self.estimator = build_cell_binary_estimator(
                spec.estimator_spec, self.predictor
            )
        self.n_observed = 0
        self.mispredictions = 0

    def observe_batch(self, pcs, takens) -> tuple[bytes, bytes]:
        """Advance the session over a batch; per-record decisions back.

        Returns parallel byte columns ``(predictions, codes)`` — codes
        are §5 observation-class codes for multi-class sessions, the
        high-confidence flag for binary ones.  The per-branch step order
        replicates :func:`repro.sim.engine.simulate` (multi-class) and
        :func:`simulate_binary` (binary) exactly.
        """
        predictions = bytearray()
        codes = bytearray()
        predictor = self.predictor
        predict = predictor.predict
        train = predictor.train
        mispredictions = 0
        if self.spec.is_binary:
            assess = self.estimator.assess
            observe = self.estimator.observe
            for pc, taken_byte in zip(pcs, takens):
                taken = taken_byte == 1
                prediction = predict(pc)
                high = assess(pc, prediction)
                if prediction != taken:
                    mispredictions += 1
                observe(pc, prediction, taken)
                train(pc, taken)
                predictions.append(1 if prediction else 0)
                codes.append(1 if high else 0)
        else:
            classify = self.estimator.classify
            observe = self.estimator.observe
            controller = self.controller
            code_of = _CODE_OF_CLASS
            for pc, taken_byte in zip(pcs, takens):
                taken = taken_byte == 1
                prediction = predict(pc)
                mispredicted = prediction != taken
                if mispredicted:
                    mispredictions += 1
                observation = predictor.last_prediction
                prediction_class = classify(observation)
                observe(observation, taken)
                if controller is not None:
                    controller.observe(
                        confidence_level_of(prediction_class), mispredicted
                    )
                train(pc, taken)
                predictions.append(1 if prediction else 0)
                codes.append(code_of[prediction_class])
        self.n_observed += len(predictions)
        self.mispredictions += mispredictions
        return bytes(predictions), bytes(codes)

    def stats(self) -> dict:
        """Plain-data session accounting (the CLOSED payload)."""
        return {
            "tenant": self.spec.tenant,
            "observed": self.n_observed,
            "mispredictions": self.mispredictions,
        }
