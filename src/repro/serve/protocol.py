"""The confidence-serving wire protocol.

Every message is one length-prefixed frame (little-endian)::

    u32 length | u8 type | payload            # length = 1 + len(payload)

Control messages (HELLO and its reply, CLOSE/CLOSED, ERROR) carry small
JSON payloads; the hot-path OBSERVE/RESULTS pair is packed binary so a
batch of branches costs 9 bytes up and 2 bytes down per record:

* ``OBSERVE``: ``u32 count`` then ``count × (u64 pc | u8 taken)`` — the
  resolved direction ships with the request, mirroring the offline
  replay loops (the trace is the ground truth; the server's job is the
  deterministic prediction/confidence decision stream, not oracle
  direction guessing).
* ``RESULTS``: ``u32 count`` then ``count × (u8 prediction | u8 code)``
  where ``code`` indexes
  :data:`repro.sim.observe.OBSERVATION_CLASS_CODES` for multi-class
  (``tage``) sessions and is the high-confidence flag (0/1) for binary
  estimator sessions.

Batching amortizes round trips; a request is answered by exactly one
frame (RESULTS on success, ERROR with a reason code otherwise), and
responses preserve request order per connection, so clients may pipeline
freely.

Every malformed frame raises :class:`ProtocolError`; oversized frames
are rejected before allocation (:data:`MAX_FRAME`).
"""

from __future__ import annotations

import asyncio
import json
import struct

__all__ = [
    "MSG_HELLO",
    "MSG_OBSERVE",
    "MSG_CLOSE",
    "MSG_HELLO_OK",
    "MSG_RESULTS",
    "MSG_CLOSED",
    "MSG_ERROR",
    "ERR_REJECTED",
    "ERR_TIMEOUT",
    "ERR_BAD_REQUEST",
    "ERR_DRAINING",
    "ERR_INTERNAL",
    "ERROR_NAMES",
    "MAX_FRAME",
    "ProtocolError",
    "encode_frame",
    "read_frame",
    "encode_json",
    "decode_json",
    "pack_observe",
    "unpack_observe",
    "pack_results",
    "unpack_results",
    "encode_error",
    "decode_error",
]

# -- message types (client → server) ----------------------------------------
MSG_HELLO = 0x01
MSG_OBSERVE = 0x02
MSG_CLOSE = 0x03

# -- message types (server → client) ----------------------------------------
MSG_HELLO_OK = 0x81
MSG_RESULTS = 0x82
MSG_CLOSED = 0x83
MSG_ERROR = 0x90

# -- error reason codes (ERROR payload byte 0) ------------------------------
ERR_REJECTED = 1      #: tenant admission queue full — retry later
ERR_TIMEOUT = 2       #: request missed its deadline (queued too long / stalled send)
ERR_BAD_REQUEST = 3   #: malformed or out-of-order request
ERR_DRAINING = 4      #: server is shutting down gracefully
ERR_INTERNAL = 5      #: unexpected server-side failure

ERROR_NAMES = {
    ERR_REJECTED: "rejected",
    ERR_TIMEOUT: "timeout",
    ERR_BAD_REQUEST: "bad-request",
    ERR_DRAINING: "draining",
    ERR_INTERNAL: "internal",
}

#: Hard frame-size ceiling (16 MiB): a corrupt length prefix must not
#: trigger a giant allocation.  At 9 bytes per observe record this still
#: allows ~1.8M-branch batches — far past the useful batching range.
MAX_FRAME = 16 * 1024 * 1024

_LENGTH = struct.Struct("<I")
_COUNT = struct.Struct("<I")
_OBSERVE_RECORD = struct.Struct("<QB")
_RESULT_RECORD = struct.Struct("<BB")


class ProtocolError(ValueError):
    """A malformed, oversized or truncated protocol frame."""


def encode_frame(msg_type: int, payload: bytes = b"") -> bytes:
    """One wire frame: length prefix, type byte, payload."""
    if not 0 <= msg_type <= 0xFF:
        raise ProtocolError(f"message type {msg_type:#x} does not fit in a byte")
    length = 1 + len(payload)
    if length > MAX_FRAME:
        raise ProtocolError(
            f"frame of {length} bytes exceeds MAX_FRAME ({MAX_FRAME})"
        )
    return _LENGTH.pack(length) + bytes([msg_type]) + payload


async def read_frame(
    reader: asyncio.StreamReader,
    body_timeout: float | None = None,
) -> tuple[int, bytes] | None:
    """Read one frame; ``None`` on clean EOF at a frame boundary.

    An idle connection may sit between frames forever, but once the
    length prefix has arrived the rest of the frame must follow within
    ``body_timeout`` seconds — a stalled client mid-frame raises
    :class:`asyncio.TimeoutError` instead of pinning the reader task
    (the server answers with an ``ERR_TIMEOUT`` frame and disconnects).

    Raises:
        ProtocolError: truncated frame, zero/oversized length prefix.
        asyncio.TimeoutError: frame body stalled past ``body_timeout``.
    """
    prefix = await reader.read(_LENGTH.size)
    if not prefix:
        return None
    while len(prefix) < _LENGTH.size:
        more = await _read_with_timeout(
            reader, _LENGTH.size - len(prefix), body_timeout
        )
        if not more:
            raise ProtocolError(
                f"truncated length prefix ({len(prefix)} of {_LENGTH.size} bytes)"
            )
        prefix += more
    (length,) = _LENGTH.unpack(prefix)
    if length == 0:
        raise ProtocolError("zero-length frame (a frame always has a type byte)")
    if length > MAX_FRAME:
        raise ProtocolError(
            f"frame length {length} exceeds MAX_FRAME ({MAX_FRAME})"
        )
    body = b""
    while len(body) < length:
        more = await _read_with_timeout(reader, length - len(body), body_timeout)
        if not more:
            raise ProtocolError(
                f"truncated frame body ({len(body)} of {length} bytes)"
            )
        body += more
    return body[0], body[1:]


async def _read_with_timeout(
    reader: asyncio.StreamReader, n: int, timeout: float | None
) -> bytes:
    if timeout is None:
        return await reader.read(n)
    return await asyncio.wait_for(reader.read(n), timeout)


# -- JSON control payloads --------------------------------------------------

def encode_json(value: dict) -> bytes:
    """Canonical (sorted, compact) JSON payload bytes."""
    return json.dumps(value, sort_keys=True, separators=(",", ":")).encode()


def decode_json(payload: bytes) -> dict:
    try:
        value = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"malformed JSON control payload ({error})") from error
    if not isinstance(value, dict):
        raise ProtocolError(
            f"control payload must be a JSON object, got {type(value).__name__}"
        )
    return value


# -- binary hot-path payloads -----------------------------------------------

def pack_observe(pcs, takens) -> bytes:
    """OBSERVE payload from parallel pc / taken columns."""
    if len(pcs) != len(takens):
        raise ProtocolError(
            f"column length mismatch: {len(pcs)} pcs, {len(takens)} takens"
        )
    pack = _OBSERVE_RECORD.pack
    parts = [_COUNT.pack(len(pcs))]
    for pc, taken in zip(pcs, takens):
        if not 0 <= pc < (1 << 64):
            raise ProtocolError(f"pc {pc:#x} does not fit in 64 bits")
        parts.append(pack(pc, 1 if taken else 0))
    return b"".join(parts)


def unpack_observe(payload: bytes) -> tuple[list[int], bytes]:
    """OBSERVE payload → ``(pcs, takens)`` columns."""
    if len(payload) < _COUNT.size:
        raise ProtocolError("observe payload shorter than its count field")
    (count,) = _COUNT.unpack_from(payload)
    body = payload[_COUNT.size:]
    if len(body) != count * _OBSERVE_RECORD.size:
        raise ProtocolError(
            f"observe payload advertises {count} records but carries "
            f"{len(body)} bytes ({count * _OBSERVE_RECORD.size} expected)"
        )
    pcs: list[int] = []
    takens = bytearray()
    for pc, taken in _OBSERVE_RECORD.iter_unpack(body):
        if taken > 1:
            raise ProtocolError(f"invalid taken byte {taken} (must be 0 or 1)")
        pcs.append(pc)
        takens.append(taken)
    return pcs, bytes(takens)


def pack_results(predictions: bytes, codes: bytes) -> bytes:
    """RESULTS payload from parallel prediction / class-code columns."""
    if len(predictions) != len(codes):
        raise ProtocolError(
            f"column length mismatch: {len(predictions)} predictions, "
            f"{len(codes)} codes"
        )
    pack = _RESULT_RECORD.pack
    parts = [_COUNT.pack(len(predictions))]
    parts.extend(pack(p, c) for p, c in zip(predictions, codes))
    return b"".join(parts)


def unpack_results(payload: bytes) -> tuple[bytes, bytes]:
    """RESULTS payload → ``(predictions, codes)`` byte columns."""
    if len(payload) < _COUNT.size:
        raise ProtocolError("results payload shorter than its count field")
    (count,) = _COUNT.unpack_from(payload)
    body = payload[_COUNT.size:]
    if len(body) != count * _RESULT_RECORD.size:
        raise ProtocolError(
            f"results payload advertises {count} records but carries "
            f"{len(body)} bytes ({count * _RESULT_RECORD.size} expected)"
        )
    predictions = bytearray()
    codes = bytearray()
    for prediction, code in _RESULT_RECORD.iter_unpack(body):
        predictions.append(prediction)
        codes.append(code)
    return bytes(predictions), bytes(codes)


# -- error payloads ---------------------------------------------------------

def encode_error(code: int, message: str) -> bytes:
    """ERROR payload: reason byte + UTF-8 message."""
    if code not in ERROR_NAMES:
        raise ProtocolError(f"unknown error code {code}")
    return bytes([code]) + message.encode("utf-8")


def decode_error(payload: bytes) -> tuple[int, str]:
    if not payload:
        raise ProtocolError("empty error payload (needs a reason byte)")
    code = payload[0]
    if code not in ERROR_NAMES:
        raise ProtocolError(f"unknown error code {code}")
    return code, payload[1:].decode("utf-8", errors="replace")
