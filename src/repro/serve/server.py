"""The asyncio confidence server.

One :class:`ConfidenceServer` holds every tenant's
:class:`~repro.serve.state.TenantSession` and serves the wire protocol
of :mod:`repro.serve.protocol`.  The concurrency model is
shard-per-worker:

* a tenant maps to a fixed shard (CRC-32 of the tenant name modulo
  ``n_shards``), and each shard is one FIFO work queue drained by one
  worker task — so per-tenant requests execute serially in arrival
  order (sessions need no locks) while distinct shards interleave
  cooperatively;
* each connection runs a reader task (frames → admission → shard queue)
  and a writer task draining an ordered response queue, so clients may
  pipeline requests and still receive responses in request order.

Admission control and fault semantics:

* **per-tenant queue bound** — at most ``max_tenant_queue`` admitted
  but uncompleted observe requests per tenant, across all of the
  tenant's connections; the bound answers an explicit ``ERR_REJECTED``
  frame instead of queueing unboundedly (the rejected batch is *not*
  applied);
* **request timeout** — a request that sits queued past
  ``request_timeout`` answers ``ERR_TIMEOUT`` and is *not* applied, so
  the tenant's decision stream stays an exact function of the
  successfully answered batches;
* **stalled clients** — a connection that stops sending mid-frame for
  ``request_timeout`` seconds is answered with ``ERR_TIMEOUT`` and
  disconnected; its tenant state keeps only the fully received batches,
  and no other tenant is affected;
* **graceful drain** — :meth:`ConfidenceServer.drain` stops accepting
  connections, answers new requests with ``ERR_DRAINING``, completes
  everything already queued, then retires the shard workers and closes
  the remaining connections.
"""

from __future__ import annotations

import asyncio
import zlib
from contextlib import asynccontextmanager
from dataclasses import dataclass

from repro.serve import protocol
from repro.serve.state import SessionSpec, TenantSession

__all__ = ["ServerConfig", "ConfidenceServer", "running_server"]


@dataclass(frozen=True)
class ServerConfig:
    """Serving knobs.

    Attributes:
        host / port: bind address; port 0 picks a free port (tests).
        n_shards: shard worker count (per-tenant serialization units).
        max_tenant_queue: admitted-but-uncompleted observe requests
            allowed per tenant before explicit rejects.
        request_timeout: seconds a request may wait in its shard queue
            (and a client may stall mid-frame) before ``ERR_TIMEOUT``.
        max_batch: records allowed per observe frame.
        service_delay: artificial per-request processing delay in
            seconds — a test/bench hook for making queueing effects
            (rejects, timeouts, saturation) deterministic; 0 in
            production.
    """

    host: str = "127.0.0.1"
    port: int = 0
    n_shards: int = 4
    max_tenant_queue: int = 64
    request_timeout: float = 5.0
    max_batch: int = 8192
    service_delay: float = 0.0

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {self.n_shards}")
        if self.max_tenant_queue < 1:
            raise ValueError(
                f"max_tenant_queue must be >= 1, got {self.max_tenant_queue}"
            )
        if self.request_timeout <= 0:
            raise ValueError(
                f"request_timeout must be positive, got {self.request_timeout}"
            )
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.service_delay < 0:
            raise ValueError(
                f"service_delay must be non-negative, got {self.service_delay}"
            )


class _Work:
    """One admitted observe request travelling through a shard queue."""

    __slots__ = ("session", "pcs", "takens", "deadline", "future")

    def __init__(self, session, pcs, takens, deadline, future):
        self.session = session
        self.pcs = pcs
        self.takens = takens
        self.deadline = deadline
        self.future = future


_CONNECTION_DONE = object()
_WORKER_STOP = object()


class ConfidenceServer:
    """Long-running multi-tenant prediction/confidence server."""

    def __init__(self, config: ServerConfig | None = None) -> None:
        self.config = config or ServerConfig()
        self._sessions: dict[str, TenantSession] = {}
        self._inflight: dict[str, int] = {}
        self._shards: list[asyncio.Queue] = []
        self._workers: list[asyncio.Task] = []
        self._writers: set[asyncio.StreamWriter] = set()
        self._server: asyncio.base_events.Server | None = None
        self._draining = False
        self.n_admitted = 0
        self.n_rejected = 0
        self.n_timed_out = 0
        self.n_answered = 0

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Bind, spawn shard workers, accept connections; returns address."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._shards = [asyncio.Queue() for _ in range(self.config.n_shards)]
        self._workers = [
            asyncio.ensure_future(self._shard_worker(queue))
            for queue in self._shards
        ]
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        return self.address

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — meaningful after :meth:`start`."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not listening")
        host, port = self._server.sockets[0].getsockname()[:2]
        return host, port

    @property
    def draining(self) -> bool:
        return self._draining

    def session_stats(self) -> list[dict]:
        """Per-tenant accounting, in tenant-creation order."""
        return [session.stats() for session in self._sessions.values()]

    async def drain(self) -> None:
        """Graceful shutdown: finish queued work, then stop.

        Idempotent.  New requests arriving while draining are answered
        with ``ERR_DRAINING``; everything admitted before the drain
        started completes and is answered normally.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for queue in self._shards:
            await queue.join()
        for queue in self._shards:
            queue.put_nowait(_WORKER_STOP)
        for worker in self._workers:
            await worker
        self._workers = []
        for writer in list(self._writers):
            writer.close()
        self._writers.clear()

    # -- shard workers -------------------------------------------------

    def _shard_of(self, tenant: str) -> asyncio.Queue:
        index = zlib.crc32(tenant.encode()) % len(self._shards)
        return self._shards[index]

    async def _shard_worker(self, queue: asyncio.Queue) -> None:
        loop = asyncio.get_running_loop()
        while True:
            work = await queue.get()
            if work is _WORKER_STOP:
                queue.task_done()
                return
            try:
                tenant = work.session.spec.tenant
                self._inflight[tenant] -= 1
                if loop.time() > work.deadline:
                    # The batch is dropped, not applied: a TIMEOUT reply
                    # tells the client exactly which prefix of its
                    # stream the session state reflects.
                    self.n_timed_out += 1
                    self._resolve(
                        work.future,
                        _error_frame(protocol.ERR_TIMEOUT,
                                     "request queued past its deadline"),
                    )
                    continue
                if self.config.service_delay:
                    await asyncio.sleep(self.config.service_delay)
                try:
                    predictions, codes = work.session.observe_batch(
                        work.pcs, work.takens
                    )
                except Exception as error:  # state bug — answer, don't die
                    self._resolve(
                        work.future,
                        _error_frame(protocol.ERR_INTERNAL, repr(error)),
                    )
                    continue
                self.n_answered += 1
                self._resolve(
                    work.future,
                    protocol.encode_frame(
                        protocol.MSG_RESULTS,
                        protocol.pack_results(predictions, codes),
                    ),
                )
            finally:
                queue.task_done()

    @staticmethod
    def _resolve(future: asyncio.Future, frame: bytes) -> None:
        if not future.done():
            future.set_result(frame)

    # -- connection handling -------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        responses: asyncio.Queue = asyncio.Queue()
        writer_task = asyncio.ensure_future(
            self._write_responses(writer, responses)
        )
        try:
            await self._read_requests(reader, responses)
        finally:
            responses.put_nowait(_CONNECTION_DONE)
            await writer_task
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_requests(
        self, reader: asyncio.StreamReader, responses: asyncio.Queue
    ) -> None:
        """Per-connection reader loop; returns when the stream ends."""
        loop = asyncio.get_running_loop()
        session: TenantSession | None = None
        while True:
            try:
                frame = await protocol.read_frame(
                    reader, body_timeout=self.config.request_timeout
                )
            except asyncio.TimeoutError:
                self.n_timed_out += 1
                responses.put_nowait(_error_frame(
                    protocol.ERR_TIMEOUT, "stalled mid-frame"
                ))
                return
            except protocol.ProtocolError as error:
                responses.put_nowait(_error_frame(
                    protocol.ERR_BAD_REQUEST, str(error)
                ))
                return
            except (ConnectionError, OSError):
                return
            if frame is None:  # clean EOF (or mid-stream disconnect)
                return
            msg_type, payload = frame

            if msg_type == protocol.MSG_HELLO:
                try:
                    spec = SessionSpec.from_dict(protocol.decode_json(payload))
                    session = self._open_session(spec)
                except (protocol.ProtocolError, ValueError) as error:
                    responses.put_nowait(_error_frame(
                        protocol.ERR_BAD_REQUEST, str(error)
                    ))
                    return
                shard = zlib.crc32(spec.tenant.encode()) % len(self._shards)
                responses.put_nowait(protocol.encode_frame(
                    protocol.MSG_HELLO_OK,
                    protocol.encode_json({
                        "tenant": spec.tenant,
                        "shard": shard,
                        "predictor": spec.predictor,
                        "estimator": spec.estimator,
                        "observed": session.n_observed,
                    }),
                ))
                continue

            if msg_type == protocol.MSG_CLOSE:
                stats = session.stats() if session is not None else {}
                responses.put_nowait(protocol.encode_frame(
                    protocol.MSG_CLOSED, protocol.encode_json(stats)
                ))
                return

            if msg_type != protocol.MSG_OBSERVE:
                responses.put_nowait(_error_frame(
                    protocol.ERR_BAD_REQUEST,
                    f"unknown message type {msg_type:#x}",
                ))
                return
            if session is None:
                responses.put_nowait(_error_frame(
                    protocol.ERR_BAD_REQUEST, "observe before hello"
                ))
                return
            try:
                pcs, takens = protocol.unpack_observe(payload)
            except protocol.ProtocolError as error:
                responses.put_nowait(_error_frame(
                    protocol.ERR_BAD_REQUEST, str(error)
                ))
                return
            if len(pcs) > self.config.max_batch:
                responses.put_nowait(_error_frame(
                    protocol.ERR_BAD_REQUEST,
                    f"batch of {len(pcs)} exceeds max_batch "
                    f"({self.config.max_batch})",
                ))
                return

            # -- admission control (explicit replies, never a hang) ----
            if self._draining:
                responses.put_nowait(_error_frame(
                    protocol.ERR_DRAINING, "server is draining"
                ))
                continue
            tenant = session.spec.tenant
            inflight = self._inflight.get(tenant, 0)
            if inflight >= self.config.max_tenant_queue:
                self.n_rejected += 1
                responses.put_nowait(_error_frame(
                    protocol.ERR_REJECTED,
                    f"tenant {tenant!r} queue full "
                    f"({inflight} requests pending)",
                ))
                continue
            self._inflight[tenant] = inflight + 1
            self.n_admitted += 1
            future: asyncio.Future = asyncio.get_running_loop().create_future()
            self._shard_of(tenant).put_nowait(_Work(
                session, pcs, takens,
                deadline=loop.time() + self.config.request_timeout,
                future=future,
            ))
            responses.put_nowait(future)

    def _open_session(self, spec: SessionSpec) -> TenantSession:
        """Create the tenant session, or re-attach to the existing one.

        Re-attaching requires an identical spec: tenant identity is the
        state namespace, so two clients disagreeing about the cell the
        tenant runs would corrupt each other's decision streams.
        """
        existing = self._sessions.get(spec.tenant)
        if existing is not None:
            if existing.spec != spec:
                raise ValueError(
                    f"tenant {spec.tenant!r} already exists with a "
                    "different session spec"
                )
            return existing
        session = TenantSession(spec)
        self._sessions[spec.tenant] = session
        return session

    async def _write_responses(
        self, writer: asyncio.StreamWriter, responses: asyncio.Queue
    ) -> None:
        """Drain the ordered response queue onto the socket.

        Items are ready frames or futures of frames, in request order.
        Write failures (client went away) are swallowed — the queue is
        still consumed so in-flight shard work can resolve its futures
        without anyone waiting on a dead socket.
        """
        broken = False
        while True:
            item = await responses.get()
            if item is _CONNECTION_DONE:
                return
            frame = item if isinstance(item, bytes) else await item
            if broken:
                continue
            try:
                writer.write(frame)
                await writer.drain()
            except (ConnectionError, OSError):
                broken = True


def _error_frame(code: int, message: str) -> bytes:
    return protocol.encode_frame(
        protocol.MSG_ERROR, protocol.encode_error(code, message)
    )


@asynccontextmanager
async def running_server(config: ServerConfig | None = None):
    """Context manager running a server for the enclosed block (tests)."""
    server = ConfidenceServer(config)
    await server.start()
    try:
        yield server
    finally:
        await server.drain()
