"""Branch trace substrate.

The paper evaluates on the CBP-1 and CBP-2 championship trace sets, which
are no longer distributed.  This package provides a faithful *synthetic*
substitute (see DESIGN.md §2): deterministic workload generators that
produce traces with the same names and the same qualitative mix of branch
behaviours (strongly biased, loop, pattern, history-correlated,
intrinsically noisy, large-working-set), plus a compact binary trace file
format so traces can be produced once and replayed.

Public entry points:

* :func:`cbp1_trace` / :func:`cbp2_trace` — generate one named trace;
* :func:`cbp1_suite` / :func:`cbp2_suite` — generate a whole suite;
* :data:`CBP1_TRACE_NAMES` / :data:`CBP2_TRACE_NAMES` — the paper's names;
* :class:`repro.traces.types.Trace` — the in-memory trace model;
* :mod:`repro.traces.io` — trace file read/write.
"""

from repro.traces.io import read_trace, write_trace
from repro.traces.kernels import (
    BiasedKernel,
    BranchKernel,
    HistoryFunctionKernel,
    HistoryParityKernel,
    LocalPatternKernel,
    LoopKernel,
    NestedLoopKernel,
    PatternKernel,
)
from repro.traces.stats import TraceStatistics, analyze_trace
from repro.traces.suites import (
    CBP1_TRACE_NAMES,
    CBP2_TRACE_NAMES,
    cbp1_suite,
    cbp1_trace,
    cbp2_suite,
    cbp2_trace,
    trace_spec,
)
from repro.traces.types import BranchRecord, Trace
from repro.traces.workload import KernelMix, StaticBranch, SyntheticWorkload, WorkloadSpec

__all__ = [
    "BiasedKernel",
    "BranchKernel",
    "BranchRecord",
    "CBP1_TRACE_NAMES",
    "CBP2_TRACE_NAMES",
    "HistoryFunctionKernel",
    "HistoryParityKernel",
    "KernelMix",
    "LocalPatternKernel",
    "LoopKernel",
    "NestedLoopKernel",
    "PatternKernel",
    "StaticBranch",
    "SyntheticWorkload",
    "Trace",
    "TraceStatistics",
    "WorkloadSpec",
    "analyze_trace",
    "cbp1_suite",
    "cbp1_trace",
    "cbp2_suite",
    "cbp2_trace",
    "read_trace",
    "trace_spec",
    "write_trace",
]
