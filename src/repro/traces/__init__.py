"""Branch trace substrate.

The paper evaluates on the CBP-1 and CBP-2 championship trace sets, which
are no longer distributed.  This package provides a faithful *synthetic*
substitute (see DESIGN.md §2): deterministic workload generators that
produce traces with the same names and the same qualitative mix of branch
behaviours (strongly biased, loop, pattern, history-correlated,
intrinsically noisy, large-working-set), plus a compact binary trace file
format so traces can be produced once and replayed.

Public entry points:

* :func:`cbp1_trace` / :func:`cbp2_trace` — generate one named trace;
* :func:`cbp1_suite` / :func:`cbp2_suite` — generate a whole suite;
* :data:`CBP1_TRACE_NAMES` / :data:`CBP2_TRACE_NAMES` — the paper's names;
* :class:`repro.traces.types.Trace` — the in-memory trace model;
* :mod:`repro.traces.io` — trace file read/write (streaming reads);
* :mod:`repro.traces.sources` — pluggable trace sources: ``file:<path>``
  replay, parameterized generators and the adversarial scenario zoo
  (``zoo.*`` names), all resolvable through
  :func:`repro.sim.runner.get_trace`.
"""

from repro.traces.io import TraceReader, read_trace, write_trace
from repro.traces.kernels import (
    BiasedKernel,
    BranchKernel,
    HistoryFunctionKernel,
    HistoryParityKernel,
    LocalPatternKernel,
    LoopKernel,
    NestedLoopKernel,
    PatternKernel,
)
from repro.traces.sources import (
    TraceSource,
    ZOO_SOURCE_NAMES,
    register_source,
    resolve_trace,
    source_names,
)
from repro.traces.stats import TraceStatistics, analyze_trace
from repro.traces.suites import (
    CBP1_TRACE_NAMES,
    CBP2_TRACE_NAMES,
    cbp1_suite,
    cbp1_trace,
    cbp2_suite,
    cbp2_trace,
    trace_spec,
)
from repro.traces.types import BranchRecord, Trace
from repro.traces.workload import KernelMix, StaticBranch, SyntheticWorkload, WorkloadSpec

__all__ = [
    "BiasedKernel",
    "BranchKernel",
    "BranchRecord",
    "CBP1_TRACE_NAMES",
    "CBP2_TRACE_NAMES",
    "HistoryFunctionKernel",
    "HistoryParityKernel",
    "KernelMix",
    "LocalPatternKernel",
    "LoopKernel",
    "NestedLoopKernel",
    "PatternKernel",
    "StaticBranch",
    "SyntheticWorkload",
    "Trace",
    "TraceReader",
    "TraceSource",
    "TraceStatistics",
    "WorkloadSpec",
    "ZOO_SOURCE_NAMES",
    "analyze_trace",
    "register_source",
    "resolve_trace",
    "source_names",
    "cbp1_suite",
    "cbp1_trace",
    "cbp2_suite",
    "cbp2_trace",
    "read_trace",
    "trace_spec",
    "write_trace",
]
