"""Binary trace file format.

Layout (little-endian):

====== ======= =====================================
offset size    field
====== ======= =====================================
0      4       magic ``b"RTRC"``
4      2       format version (currently 1)
6      2       name length ``n`` (UTF-8 bytes)
8      n       trace name
8+n    8       record count ``m``
...    m*10    records: u64 pc, u8 taken, u8 insts
====== ======= =====================================

Files whose path ends in ``.gz`` are transparently gzip-compressed.  The
format round-trips every :class:`repro.traces.types.Trace` whose PCs fit
in 64 bits and whose per-record instruction counts fit in 8 bits (both are
asserted at write time).

Reading is streaming: :class:`TraceReader` decodes the record payload in
bounded buffers, so multi-million-branch files replay without eagerly
materializing the whole trace (:meth:`TraceReader.iter_records` /
:meth:`TraceReader.iter_chunks`).  :func:`read_trace` remains the
materialize-everything convenience wrapper.

Every malformed input raises :class:`TraceFormatError` with a message
naming the offending field (``magic``, ``version``, ``name``,
``record count``, ``record payload``, ``taken``, ``inst``) — there are
no silent-garbage paths: truncation, non-UTF-8 names, out-of-range
record bytes, trailing data and corrupt gzip streams all fail loudly.
"""

from __future__ import annotations

import gzip
import struct
import zlib
from pathlib import Path
from typing import BinaryIO, Iterator

from repro.traces.types import BranchRecord, Trace

__all__ = [
    "write_trace",
    "read_trace",
    "TraceReader",
    "TraceFormatError",
    "FORMAT_VERSION",
    "MAGIC",
]

MAGIC = b"RTRC"
FORMAT_VERSION = 1
_HEADER = struct.Struct("<4sHH")
_COUNT = struct.Struct("<Q")
_RECORD = struct.Struct("<QBB")

#: Records decoded per streaming read (640 KiB payload buffers).
_CHUNK_RECORDS = 65_536


class TraceFormatError(ValueError):
    """Raised when a trace file is malformed or unsupported."""


def _open(path: Path, mode: str) -> BinaryIO:
    if path.suffix == ".gz":
        return gzip.open(path, mode)  # type: ignore[return-value]
    return open(path, mode)


def write_trace(trace: Trace, path: str | Path) -> None:
    """Serialize ``trace`` to ``path`` (gzip if the suffix is ``.gz``)."""
    path = Path(path)
    name_bytes = trace.name.encode("utf-8")
    if len(name_bytes) > 0xFFFF:
        raise TraceFormatError(
            f"trace name too long ({len(name_bytes)} bytes; the name field "
            "holds at most 65535)"
        )
    with _open(path, "wb") as stream:
        stream.write(_HEADER.pack(MAGIC, FORMAT_VERSION, len(name_bytes)))
        stream.write(name_bytes)
        stream.write(_COUNT.pack(len(trace)))
        pack = _RECORD.pack
        write = stream.write
        for pc, taken, inst in zip(trace.pcs, trace.takens, trace.insts):
            if not 0 <= pc < (1 << 64):
                raise TraceFormatError(f"pc {pc:#x} does not fit in 64 bits")
            if not 1 <= inst <= 0xFF:
                raise TraceFormatError(f"inst count {inst} does not fit in 8 bits")
            write(pack(pc, taken, inst))


class TraceReader:
    """Streaming RTRC reader: header up front, records on demand.

    Usable as a context manager::

        with TraceReader(path) as reader:
            for record in reader.iter_records():
                ...

    The header (magic, version, name, record count) is validated in the
    constructor; the record payload is decoded lazily in bounded buffers
    so arbitrarily large traces never materialize eagerly.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._stream = _open(self.path, "rb")
        try:
            header = self._read("header", _HEADER.size, exact=True)
            magic, version, name_len = _HEADER.unpack(header)
            if magic != MAGIC:
                raise TraceFormatError(f"{self.path}: bad magic {magic!r}")
            if version != FORMAT_VERSION:
                raise TraceFormatError(
                    f"{self.path}: unsupported version {version}"
                )
            self.version = version
            name_bytes = self._read("name", name_len, exact=True)
            try:
                self.name = name_bytes.decode("utf-8")
            except UnicodeDecodeError as error:
                raise TraceFormatError(
                    f"{self.path}: name field is not valid UTF-8 ({error})"
                ) from error
            count_bytes = self._read("record count", _COUNT.size, exact=True)
            (self.n_records,) = _COUNT.unpack(count_bytes)
        except BaseException:
            # BaseException, not Exception: a KeyboardInterrupt (or any
            # other non-Exception raise) during header parsing must not
            # leak the file handle either — same idiom as
            # PlaneCache.store's cleanup path.
            self._stream.close()
            raise
        self._consumed = 0

    # -- low-level IO --------------------------------------------------

    def _read(self, field: str, size: int, *, exact: bool = False) -> bytes:
        """Read up to ``size`` bytes, converting every failure mode —
        short reads (when ``exact``) and corrupt compressed streams —
        into a :class:`TraceFormatError` naming the field."""
        try:
            data = self._stream.read(size)
        except (OSError, EOFError, zlib.error) as error:  # BadGzipFile is OSError
            raise TraceFormatError(
                f"{self.path}: corrupt stream while reading {field} ({error})"
            ) from error
        if exact and len(data) != size:
            raise TraceFormatError(
                f"{self.path}: truncated {field} "
                f"(expected {size} bytes, got {len(data)})"
            )
        return data

    # -- record access -------------------------------------------------

    def iter_records(self) -> Iterator[BranchRecord]:
        """Yield every remaining record, decoding in bounded buffers."""
        path = self.path
        while self._consumed < self.n_records:
            batch = min(_CHUNK_RECORDS, self.n_records - self._consumed)
            payload = self._read("record payload", batch * _RECORD.size)
            got, extra = divmod(len(payload), _RECORD.size)
            if got != batch or extra:
                raise TraceFormatError(
                    f"{path}: expected {self.n_records} records, record "
                    f"payload truncated at record {self._consumed + got}"
                )
            for index, (pc, taken, inst) in enumerate(_RECORD.iter_unpack(payload)):
                if taken > 1:
                    raise TraceFormatError(
                        f"{path}: record {self._consumed + index}: "
                        f"invalid taken byte {taken} (must be 0 or 1)"
                    )
                if inst < 1:
                    raise TraceFormatError(
                        f"{path}: record {self._consumed + index}: "
                        f"invalid inst count {inst} (must be >= 1)"
                    )
                yield BranchRecord(pc, bool(taken), inst)
            self._consumed += batch

    def iter_chunks(self, chunk_size: int = _CHUNK_RECORDS) -> Iterator[Trace]:
        """Yield the records as :class:`Trace` chunks of ``chunk_size``."""
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        pcs: list[int] = []
        takens: list[bool] = []
        insts: list[int] = []
        for record in self.iter_records():
            pcs.append(record.pc)
            takens.append(record.taken)
            insts.append(record.inst_count)
            if len(pcs) >= chunk_size:
                yield Trace(self.name, pcs, takens, insts)
                pcs, takens, insts = [], [], []
        if pcs:
            yield Trace(self.name, pcs, takens, insts)

    def read(self) -> Trace:
        """Materialize every remaining record, then reject trailing data."""
        trace = Trace.from_records(self.name, self.iter_records())
        trailing = self._read("end of file", 1)
        if trailing:
            raise TraceFormatError(
                f"{self.path}: trailing data after {self.n_records} records"
            )
        return trace

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        self._stream.close()

    def __enter__(self) -> "TraceReader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_trace(path: str | Path) -> Trace:
    """Deserialize a trace previously written by :func:`write_trace`."""
    with TraceReader(path) as reader:
        return reader.read()
