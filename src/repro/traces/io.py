"""Binary trace file format.

Layout (little-endian):

====== ======= =====================================
offset size    field
====== ======= =====================================
0      4       magic ``b"RTRC"``
4      2       format version (currently 1)
6      2       name length ``n`` (UTF-8 bytes)
8      n       trace name
8+n    8       record count ``m``
...    m*10    records: u64 pc, u8 taken, u8 insts
====== ======= =====================================

Files whose path ends in ``.gz`` are transparently gzip-compressed.  The
format round-trips every :class:`repro.traces.types.Trace` whose PCs fit
in 64 bits and whose per-record instruction counts fit in 8 bits (both are
asserted at write time).
"""

from __future__ import annotations

import gzip
import struct
from pathlib import Path
from typing import BinaryIO

from repro.traces.types import Trace

__all__ = ["write_trace", "read_trace", "TraceFormatError", "FORMAT_VERSION", "MAGIC"]

MAGIC = b"RTRC"
FORMAT_VERSION = 1
_HEADER = struct.Struct("<4sHH")
_COUNT = struct.Struct("<Q")
_RECORD = struct.Struct("<QBB")


class TraceFormatError(ValueError):
    """Raised when a trace file is malformed or unsupported."""


def _open(path: Path, mode: str) -> BinaryIO:
    if path.suffix == ".gz":
        return gzip.open(path, mode)  # type: ignore[return-value]
    return open(path, mode)


def write_trace(trace: Trace, path: str | Path) -> None:
    """Serialize ``trace`` to ``path`` (gzip if the suffix is ``.gz``)."""
    path = Path(path)
    name_bytes = trace.name.encode("utf-8")
    if len(name_bytes) > 0xFFFF:
        raise TraceFormatError(f"trace name too long ({len(name_bytes)} bytes)")
    with _open(path, "wb") as stream:
        stream.write(_HEADER.pack(MAGIC, FORMAT_VERSION, len(name_bytes)))
        stream.write(name_bytes)
        stream.write(_COUNT.pack(len(trace)))
        pack = _RECORD.pack
        write = stream.write
        for pc, taken, inst in zip(trace.pcs, trace.takens, trace.insts):
            if not 0 <= pc < (1 << 64):
                raise TraceFormatError(f"pc {pc:#x} does not fit in 64 bits")
            if not 1 <= inst <= 0xFF:
                raise TraceFormatError(f"inst count {inst} does not fit in 8 bits")
            write(pack(pc, taken, inst))


def read_trace(path: str | Path) -> Trace:
    """Deserialize a trace previously written by :func:`write_trace`."""
    path = Path(path)
    with _open(path, "rb") as stream:
        header = stream.read(_HEADER.size)
        if len(header) != _HEADER.size:
            raise TraceFormatError(f"{path}: truncated header")
        magic, version, name_len = _HEADER.unpack(header)
        if magic != MAGIC:
            raise TraceFormatError(f"{path}: bad magic {magic!r}")
        if version != FORMAT_VERSION:
            raise TraceFormatError(f"{path}: unsupported version {version}")
        name = stream.read(name_len).decode("utf-8")
        count_bytes = stream.read(_COUNT.size)
        if len(count_bytes) != _COUNT.size:
            raise TraceFormatError(f"{path}: truncated record count")
        (count,) = _COUNT.unpack(count_bytes)
        payload = stream.read(count * _RECORD.size)
        if len(payload) != count * _RECORD.size:
            raise TraceFormatError(
                f"{path}: expected {count} records, payload truncated"
            )
    pcs: list[int] = []
    takens: list[int] = []
    insts: list[int] = []
    for pc, taken, inst in _RECORD.iter_unpack(payload):
        pcs.append(pc)
        takens.append(taken)
        insts.append(inst)
    return Trace(name, pcs, takens, insts)
