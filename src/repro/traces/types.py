"""In-memory trace model.

A trace is a sequence of conditional-branch records.  Each record carries
the branch PC, the resolved direction and the number of instructions
executed since the previous record (including the branch itself), which is
what lets the simulator report Mispredictions Per Kilo-Instruction (MPKI)
exactly as the paper does.

For simulation speed the :class:`Trace` stores columns (``pcs``,
``takens``, ``insts``) rather than an array of objects; the inner loop of
:func:`repro.sim.engine.simulate` iterates the columns directly while the
record view (:meth:`Trace.records`) is the convenient API for everything
else.
"""

from __future__ import annotations

from typing import Iterable, Iterator, NamedTuple, Sequence

__all__ = ["BranchRecord", "Trace"]


class BranchRecord(NamedTuple):
    """One dynamic conditional branch.

    Attributes:
        pc: branch instruction address.
        taken: resolved direction (True = taken).
        inst_count: instructions executed since the previous record,
            including this branch (>= 1).
    """

    pc: int
    taken: bool
    inst_count: int = 1


class Trace:
    """A named, immutable-by-convention sequence of branch records.

    Construct either from columns (fast path used by the generators) or
    from records via :meth:`from_records`.
    """

    __slots__ = ("name", "pcs", "takens", "insts")

    def __init__(
        self,
        name: str,
        pcs: Sequence[int],
        takens: Sequence[int],
        insts: Sequence[int],
    ) -> None:
        if not (len(pcs) == len(takens) == len(insts)):
            raise ValueError(
                "column length mismatch: "
                f"pcs={len(pcs)} takens={len(takens)} insts={len(insts)}"
            )
        self.name = name
        self.pcs = list(pcs)
        self.takens = bytearray(int(bool(t)) for t in takens)
        self.insts = list(insts)

    @classmethod
    def from_records(cls, name: str, records: Iterable[BranchRecord]) -> "Trace":
        """Build a trace from an iterable of :class:`BranchRecord`."""
        pcs: list[int] = []
        takens: list[int] = []
        insts: list[int] = []
        for record in records:
            if record.inst_count < 1:
                raise ValueError(f"inst_count must be >= 1, got {record.inst_count}")
            pcs.append(record.pc)
            takens.append(int(record.taken))
            insts.append(record.inst_count)
        return cls(name, pcs, takens, insts)

    def __len__(self) -> int:
        return len(self.pcs)

    def __iter__(self) -> Iterator[BranchRecord]:
        return self.records()

    def records(self) -> Iterator[BranchRecord]:
        """Iterate the trace as :class:`BranchRecord` tuples."""
        for pc, taken, inst in zip(self.pcs, self.takens, self.insts):
            yield BranchRecord(pc, bool(taken), inst)

    def record(self, index: int) -> BranchRecord:
        """Random access to a single record."""
        return BranchRecord(self.pcs[index], bool(self.takens[index]), self.insts[index])

    @property
    def total_instructions(self) -> int:
        """Total instruction count covered by the trace."""
        return sum(self.insts)

    @property
    def taken_count(self) -> int:
        """Number of taken branches."""
        return sum(self.takens)

    def head(self, n_branches: int) -> "Trace":
        """A new trace containing the first ``n_branches`` records."""
        if n_branches < 0:
            raise ValueError(f"n_branches must be non-negative, got {n_branches}")
        return Trace(
            self.name,
            self.pcs[:n_branches],
            self.takens[:n_branches],
            self.insts[:n_branches],
        )

    def concat(self, other: "Trace", name: str | None = None) -> "Trace":
        """A new trace that is this trace followed by ``other``."""
        return Trace(
            name if name is not None else f"{self.name}+{other.name}",
            self.pcs + other.pcs,
            bytes(self.takens) + bytes(other.takens),
            self.insts + other.insts,
        )

    def __repr__(self) -> str:
        return f"Trace(name={self.name!r}, branches={len(self)})"
