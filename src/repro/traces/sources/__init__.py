"""Pluggable trace sources: replay, parameterized synthesis, adversaries.

Importing this package registers the scenario zoo (see
:mod:`repro.traces.sources.zoo`), so ``zoo.*`` names resolve anywhere —
:func:`repro.sim.runner.get_trace` falls back to :func:`resolve_trace`
for any name the CBP suites don't claim, including ``file:<path>``
replay of on-disk RTRC traces.

To add a source: subclass :class:`TraceSource` as a frozen dataclass
(name + spec_dict + a prefix-stable ``records`` stream) and call
:func:`register_source` at import time.  Nothing else changes — the
sweep layer, the cache, the fast backend's plane materialization and
``repro paper`` all key on the name.
"""

from repro.traces.sources.adversarial import (
    ConfidenceInversionSource,
    LinearlyInseparableSource,
    TagAliasingStormSource,
)
from repro.traces.sources.base import (
    FILE_PREFIX,
    TraceSource,
    get_source,
    is_source_name,
    register_source,
    resolve_trace,
    source_names,
)
from repro.traces.sources.generators import (
    InterferenceSource,
    LoopNestSource,
    MarkovChainSource,
    PhaseChangeSource,
)
from repro.traces.sources.replay import FileReplaySource
from repro.traces.sources.zoo import (
    ADVERSARIAL_SOURCE_NAMES,
    ZOO_SOURCE_NAMES,
    ZOO_SOURCES,
)

__all__ = [
    "ADVERSARIAL_SOURCE_NAMES",
    "ConfidenceInversionSource",
    "FILE_PREFIX",
    "FileReplaySource",
    "InterferenceSource",
    "LinearlyInseparableSource",
    "LoopNestSource",
    "MarkovChainSource",
    "PhaseChangeSource",
    "TagAliasingStormSource",
    "TraceSource",
    "ZOO_SOURCES",
    "ZOO_SOURCE_NAMES",
    "get_source",
    "is_source_name",
    "register_source",
    "resolve_trace",
    "source_names",
]
