"""Parameterized trace generators.

Four source families beyond the built-in CBP-style workloads:

* :class:`MarkovChainSource` — every static branch is an independent
  two-state Markov chain over its own direction (stay/flip
  probabilities drawn per branch), the classic analytic branch-process
  model;
* :class:`LoopNestSource` — a mix of two-level loop nests with varied
  trip counts (back-edge bursts, exits, guard branches), the structure
  loop predictors and medium TAGE histories feed on;
* :class:`PhaseChangeSource` — composes
  :class:`~repro.traces.workload.WorkloadSpec` segments into a
  phase-alternating program; each phase *resumes* its workload's kernel
  state, so phases genuinely return rather than restart;
* :class:`InterferenceSource` — context-switch interleaving of two
  sub-sources in jittered quanta, with both PC spaces remapped into one
  shared window so the streams collide in predictor tables the way two
  processes sharing a core do.

All sources are frozen dataclasses seeded through
:class:`~repro.common.rng.SplitMix64`: equal spec, equal stream, in any
process.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import islice
from typing import Iterator

from repro.common.bitops import mask
from repro.common.rng import SplitMix64
from repro.traces.sources.base import TraceSource
from repro.traces.types import BranchRecord
from repro.traces.workload import SyntheticWorkload, WorkloadSpec

__all__ = [
    "MarkovChainSource",
    "LoopNestSource",
    "PhaseChangeSource",
    "InterferenceSource",
]


def _draw(rng: SplitMix64, lo: float, hi: float) -> float:
    return lo + (hi - lo) * rng.next_float()


def _draw_int(rng: SplitMix64, lo: int, hi: int) -> int:
    return lo + rng.next_below(hi - lo + 1)


def _check_range(label: str, lo_hi: tuple, minimum) -> None:
    lo, hi = lo_hi
    if lo < minimum or hi < lo:
        raise ValueError(f"{label} must satisfy {minimum} <= min <= max, got {lo_hi}")


@dataclass(frozen=True)
class MarkovChainSource(TraceSource):
    """Independent two-state Markov chains, one per static branch.

    Branch ``i`` keeps a direction state; on each execution it *stays*
    with its per-branch stay probability (drawn from ``stay_taken`` /
    ``stay_not_taken`` per state) and flips otherwise.  High stay
    probabilities give long runs (bimodal heaven); values near 0.5
    approach a coin.
    """

    label: str
    seed: int
    n_static: int = 64
    stay_taken: tuple[float, float] = (0.85, 0.99)
    stay_not_taken: tuple[float, float] = (0.80, 0.98)
    insts_per_branch: tuple[int, int] = (3, 9)
    pc_base: int = 0x0040_0000

    def __post_init__(self) -> None:
        if self.n_static < 1:
            raise ValueError(f"n_static must be >= 1, got {self.n_static}")
        for label, lo_hi in (("stay_taken", self.stay_taken),
                             ("stay_not_taken", self.stay_not_taken)):
            lo, hi = lo_hi
            if not 0.0 <= lo <= hi <= 1.0:
                raise ValueError(f"{label} must satisfy 0 <= min <= max <= 1, got {lo_hi}")
        _check_range("insts_per_branch", self.insts_per_branch, 1)

    @property
    def name(self) -> str:
        return self.label

    def spec_dict(self) -> dict:
        return {
            "kind": "markov", "label": self.label, "seed": self.seed,
            "n_static": self.n_static, "stay_taken": list(self.stay_taken),
            "stay_not_taken": list(self.stay_not_taken),
            "insts_per_branch": list(self.insts_per_branch),
            "pc_base": self.pc_base,
        }

    def records(self, n_branches: int) -> Iterator[BranchRecord]:
        rng = SplitMix64(self.seed)
        branches = []
        pc = self.pc_base
        for _ in range(self.n_static):
            pc += 4 + 4 * rng.next_below(8)
            branches.append({
                "pc": pc,
                "stay_t": _draw(rng, *self.stay_taken),
                "stay_n": _draw(rng, *self.stay_not_taken),
                "state": bool(rng.next_u64() & 1),
            })
        walk = rng.fork()
        inst_lo, inst_hi = self.insts_per_branch
        for _ in range(n_branches):
            branch = branches[walk.next_below(self.n_static)]
            stay = branch["stay_t"] if branch["state"] else branch["stay_n"]
            if walk.next_float() >= stay:
                branch["state"] = not branch["state"]
            yield BranchRecord(
                branch["pc"], branch["state"], _draw_int(walk, inst_lo, inst_hi)
            )


@dataclass(frozen=True)
class LoopNestSource(TraceSource):
    """Two-level loop nests with per-nest trip counts.

    Each nest contributes an inner back-edge (taken ``inner - 1`` times
    then not taken), an outer back-edge, and a biased guard branch in
    the loop body; execution cycles through the nests.  Predictors with
    enough history resolve every exit; bimodal mispredicts one branch
    per inner iteration burst.
    """

    label: str
    seed: int
    n_nests: int = 10
    outer_trips: tuple[int, int] = (2, 6)
    inner_trips: tuple[int, int] = (2, 15)
    insts_per_branch: tuple[int, int] = (4, 10)
    pc_base: int = 0x0041_0000

    def __post_init__(self) -> None:
        if self.n_nests < 1:
            raise ValueError(f"n_nests must be >= 1, got {self.n_nests}")
        _check_range("outer_trips", self.outer_trips, 1)
        _check_range("inner_trips", self.inner_trips, 1)
        _check_range("insts_per_branch", self.insts_per_branch, 1)

    @property
    def name(self) -> str:
        return self.label

    def spec_dict(self) -> dict:
        return {
            "kind": "loop-nest", "label": self.label, "seed": self.seed,
            "n_nests": self.n_nests, "outer_trips": list(self.outer_trips),
            "inner_trips": list(self.inner_trips),
            "insts_per_branch": list(self.insts_per_branch),
            "pc_base": self.pc_base,
        }

    def _stream(self) -> Iterator[BranchRecord]:
        rng = SplitMix64(self.seed)
        nests = []
        pc = self.pc_base
        for _ in range(self.n_nests):
            pc += 0x40 + 4 * rng.next_below(16)
            nests.append({
                "guard_pc": pc, "inner_pc": pc + 8, "outer_pc": pc + 16,
                "outer": _draw_int(rng, *self.outer_trips),
                "inner": _draw_int(rng, *self.inner_trips),
                "guard_taken": bool(rng.next_u64() & 1),
            })
        walk = rng.fork()
        inst_lo, inst_hi = self.insts_per_branch

        def emit(pc: int, taken: bool) -> BranchRecord:
            return BranchRecord(pc, taken, _draw_int(walk, inst_lo, inst_hi))

        while True:
            for nest in nests:
                for outer_it in range(nest["outer"]):
                    # Guard flips rarely — a strongly biased body branch.
                    guard = nest["guard_taken"] ^ (walk.next_float() < 0.03)
                    yield emit(nest["guard_pc"], guard)
                    for inner_it in range(nest["inner"]):
                        yield emit(nest["inner_pc"], inner_it < nest["inner"] - 1)
                    yield emit(nest["outer_pc"], outer_it < nest["outer"] - 1)

    def records(self, n_branches: int) -> Iterator[BranchRecord]:
        return islice(self._stream(), n_branches)


@dataclass(frozen=True)
class PhaseChangeSource(TraceSource):
    """Phase-alternating composition of ``WorkloadSpec`` segments.

    The stream cycles through the segments, emitting ``phase_length``
    branches per visit.  Each segment keeps one persistent
    :class:`~repro.traces.workload.SyntheticWorkload`, so a returning
    phase *resumes* its kernels (same static branches, continued loop /
    pattern state) — the predictor sees a genuine phase change, not a
    fresh program.
    """

    label: str
    segments: tuple[WorkloadSpec, ...]
    phase_length: int = 1_200

    def __post_init__(self) -> None:
        if not self.segments:
            raise ValueError("segments must be non-empty")
        if self.phase_length < 1:
            raise ValueError(f"phase_length must be >= 1, got {self.phase_length}")

    @property
    def name(self) -> str:
        return self.label

    def spec_dict(self) -> dict:
        return {
            "kind": "phase-change", "label": self.label,
            "phase_length": self.phase_length,
            "segments": [
                {"name": spec.name, "seed": spec.seed, "n_static": spec.n_static,
                 "n_routines": spec.n_routines}
                for spec in self.segments
            ],
        }

    def records(self, n_branches: int) -> Iterator[BranchRecord]:
        workloads = [SyntheticWorkload(spec) for spec in self.segments]
        emitted = 0
        phase = 0
        while emitted < n_branches:
            workload = workloads[phase % len(workloads)]
            length = min(self.phase_length, n_branches - emitted)
            yield from workload.generate(length).records()
            emitted += length
            phase += 1


@dataclass(frozen=True)
class InterferenceSource(TraceSource):
    """Context-switch interleaving of two sources with PC collisions.

    The stream alternates between ``primary`` and ``secondary`` in
    quanta jittered around ``quantum`` branches.  When
    ``pc_window_bits`` is set, both streams' PCs are folded into one
    shared ``2**pc_window_bits``-byte window at ``pc_window_base`` —
    forcing index/tag collisions between the two "processes" exactly
    where a shared predictor would suffer them.
    """

    label: str
    primary: TraceSource
    secondary: TraceSource
    quantum: int = 64
    pc_window_bits: int | None = 13
    pc_window_base: int = 0x0040_0000
    seed: int = 0

    def __post_init__(self) -> None:
        if self.quantum < 1:
            raise ValueError(f"quantum must be >= 1, got {self.quantum}")
        if self.pc_window_bits is not None and not 4 <= self.pc_window_bits <= 48:
            raise ValueError(
                f"pc_window_bits must be in [4, 48], got {self.pc_window_bits}"
            )

    @property
    def name(self) -> str:
        return self.label

    def spec_dict(self) -> dict:
        return {
            "kind": "interference", "label": self.label, "seed": self.seed,
            "quantum": self.quantum, "pc_window_bits": self.pc_window_bits,
            "pc_window_base": self.pc_window_base,
            "primary": self.primary.spec_dict(),
            "secondary": self.secondary.spec_dict(),
        }

    def _remap(self, pc: int) -> int:
        if self.pc_window_bits is None:
            return pc
        # Fold into the shared window, keeping 4-alignment.
        return self.pc_window_base | (pc & mask(self.pc_window_bits) & ~0x3)

    def records(self, n_branches: int) -> Iterator[BranchRecord]:
        rng = SplitMix64(self.seed ^ 0x1F3E_55AA)
        streams = (
            self.primary.records(n_branches),
            self.secondary.records(n_branches),
        )
        active = 0
        emitted = 0
        dry_quanta = 0
        while emitted < n_branches:
            # Jittered quantum in [quantum/2, 3*quantum/2).
            length = max(1, self.quantum // 2 + rng.next_below(self.quantum))
            produced = 0
            for record in islice(streams[active], min(length, n_branches - emitted)):
                yield BranchRecord(
                    self._remap(record.pc), record.taken, record.inst_count
                )
                emitted += 1
                produced += 1
            # Both sub-streams exhausted (short file replay): stop early.
            dry_quanta = dry_quanta + 1 if produced == 0 else 0
            if dry_quanta >= 2:
                return
            active ^= 1
