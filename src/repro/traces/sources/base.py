"""The :class:`TraceSource` abstraction and its registry.

A trace source is a *named, seeded, hashable* recipe for a branch
stream.  Every source can

* stream records lazily (:meth:`TraceSource.records`) so huge traces
  never materialize eagerly,
* materialize a :class:`~repro.traces.types.Trace`
  (:meth:`TraceSource.generate`), and
* chunk the stream (:meth:`TraceSource.iter_chunks`) — chunking wraps
  the *same* record stream, so the concatenation of chunks is
  identical for every chunk size by construction.

Identity is the source *name*: the sweep layer ships only trace names
through job specs and caches, so a registered source flows through
``sweep/spec.py`` job hashing, the ``SweepService`` cache and the fast
backend's plane materialization unchanged.  :func:`resolve_trace` is the
picklable lookup :func:`repro.sim.runner.get_trace` falls back to —
sources registered at import time (the zoo) resolve identically inside
spawn workers.

``file:<path>`` names replay an on-disk RTRC trace (see
:mod:`repro.traces.sources.replay`) without prior registration.
"""

from __future__ import annotations

import hashlib
import json
from abc import ABC, abstractmethod
from functools import lru_cache
from itertools import islice
from pathlib import Path
from typing import Iterator

from repro.traces.types import BranchRecord, Trace

__all__ = [
    "TraceSource",
    "FILE_PREFIX",
    "register_source",
    "get_source",
    "source_names",
    "is_source_name",
    "resolve_trace",
]

#: Name prefix that resolves to on-disk RTRC replay instead of the registry.
FILE_PREFIX = "file:"


class TraceSource(ABC):
    """A named, deterministic producer of branch-record streams.

    Concrete sources are frozen dataclasses: hashable, picklable and
    fully described by :meth:`spec_dict`, so two sources with equal spec
    dicts produce bit-identical streams in any process.
    """

    @property
    @abstractmethod
    def name(self) -> str:
        """The registry/sweep identity of this source."""

    @abstractmethod
    def spec_dict(self) -> dict:
        """Plain-data parameterization (JSON-serializable, canonical)."""

    @abstractmethod
    def records(self, n_branches: int) -> Iterator[BranchRecord]:
        """Stream exactly ``n_branches`` records, lazily.

        Streams are prefix-stable: ``records(m)`` is the first ``m``
        records of ``records(n)`` for any ``m <= n`` — the property that
        lets cached materializations of different lengths coexist.
        """

    # -- derived API ---------------------------------------------------

    def generate(self, n_branches: int) -> Trace:
        """Materialize ``n_branches`` records as a :class:`Trace`."""
        if n_branches < 0:
            raise ValueError(f"n_branches must be non-negative, got {n_branches}")
        return Trace.from_records(self.name, self.records(n_branches))

    def iter_chunks(self, n_branches: int, chunk_size: int) -> Iterator[Trace]:
        """Stream ``n_branches`` records as traces of ``chunk_size``.

        Chunks partition the single stream of :meth:`records`, so their
        concatenation is independent of ``chunk_size``.
        """
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        stream = self.records(n_branches)
        while True:
            chunk = list(islice(stream, chunk_size))
            if not chunk:
                return
            yield Trace.from_records(self.name, chunk)

    def source_id(self) -> str:
        """Short content digest of the spec dict (provenance labels)."""
        payload = json.dumps(self.spec_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode()).hexdigest()[:12]


# ---------------------------------------------------------------------------
# Registry.
# ---------------------------------------------------------------------------

_REGISTRY: dict[str, TraceSource] = {}


def register_source(source: TraceSource, *, replace: bool = False) -> TraceSource:
    """Register a source under its name; returns the source.

    Names must be non-empty, contain no whitespace, and must not shadow
    the built-in CBP suite names or the ``file:`` replay prefix.
    """
    name = source.name
    if not name or name != name.strip() or any(c.isspace() for c in name):
        raise ValueError(f"invalid source name {name!r}")
    if name.startswith(FILE_PREFIX):
        raise ValueError(
            f"source name {name!r} shadows the {FILE_PREFIX!r} replay prefix"
        )
    from repro.traces.suites import CBP1_TRACE_NAMES, CBP2_TRACE_NAMES

    if name in CBP1_TRACE_NAMES or name in CBP2_TRACE_NAMES:
        raise ValueError(f"source name {name!r} shadows a built-in suite trace")
    if name in _REGISTRY:
        if not replace:
            raise ValueError(f"source {name!r} already registered")
        # The replaced source may have memoized materializations under
        # this name; drop them so the new source is actually consulted.
        _generate_cached.cache_clear()
    _REGISTRY[name] = source
    return source


def get_source(name: str) -> TraceSource:
    """Resolve a source name (registered, or a ``file:<path>`` replay)."""
    if name.startswith(FILE_PREFIX):
        from repro.traces.sources.replay import FileReplaySource

        return FileReplaySource(path=name[len(FILE_PREFIX):])
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown trace source {name!r}") from None


def source_names() -> tuple[str, ...]:
    """Registered source names, in registration order."""
    return tuple(_REGISTRY)


def is_source_name(name: str) -> bool:
    """Does ``name`` resolve to a source (registered or file replay)?"""
    return name in _REGISTRY or name.startswith(FILE_PREFIX)


@lru_cache(maxsize=64)
def _generate_cached(name: str, n_branches: int, file_stamp=None) -> Trace:
    # ``file_stamp`` only widens the memoization key (see resolve_trace);
    # generation itself depends purely on the name.
    return get_source(name).generate(n_branches)


def _file_stamp(name: str) -> tuple[int, int] | None:
    """Freshness key of a ``file:<path>`` source: ``(mtime_ns, size)``.

    ``None`` for a missing file — the stat is repeated on every resolve,
    so a file created after a failed lookup is picked up immediately.
    """
    try:
        stat = Path(name[len(FILE_PREFIX):]).stat()
    except OSError:
        return None
    return (stat.st_mtime_ns, stat.st_size)


def resolve_trace(name: str, n_branches: int) -> Trace:
    """Materialize (and memoize) a source by name — the sweep-worker path.

    ``file:<path>`` replays are additionally keyed by the file's
    ``(mtime_ns, size)``, so rewriting the on-disk trace invalidates the
    memoized materialization instead of serving stale records; replacing
    a registered source (``register_source(..., replace=True)``) clears
    the memo entirely for the same reason.
    """
    if name.startswith(FILE_PREFIX):
        return _generate_cached(name, n_branches, _file_stamp(name))
    return _generate_cached(name, n_branches)
