"""The scenario zoo: the repository's registered beyond-paper sources.

Importing this module (via :mod:`repro.traces.sources`) registers every
zoo source, so any process that can import the package — CLI, sweep
spawn workers, the golden harness — resolves ``zoo.*`` names to
bit-identical streams.  Seeds derive from the source name via CRC-32,
the same convention :mod:`repro.traces.suites` uses for the CBP names.
"""

from __future__ import annotations

import zlib

from repro.traces.sources.adversarial import (
    ConfidenceInversionSource,
    LinearlyInseparableSource,
    TagAliasingStormSource,
)
from repro.traces.sources.base import register_source
from repro.traces.sources.generators import (
    InterferenceSource,
    LoopNestSource,
    MarkovChainSource,
    PhaseChangeSource,
)
from repro.traces.workload import KernelMix, WorkloadSpec

__all__ = ["ZOO_SOURCES", "ZOO_SOURCE_NAMES", "ADVERSARIAL_SOURCE_NAMES"]


def _seed(name: str) -> int:
    return zlib.crc32(name.encode("utf-8"))


#: Phase A of ``zoo.phase``: loop-dominated numeric code (FP-like).
_PHASE_LOOPY = WorkloadSpec(
    name="zoo.phase/loops",
    seed=_seed("zoo.phase/loops"),
    n_static=160,
    n_routines=24,
    mix=KernelMix(
        biased_strong=0.30, biased_noisy=0.05, loop=0.35, pattern=0.10,
        parity=0.05, history_fn=0.05, local_pattern=0.05, nested_loop=0.05,
    ),
)

#: Phase B of ``zoo.phase``: large, noisy working set (SERV-like).
_PHASE_NOISY = WorkloadSpec(
    name="zoo.phase/noisy",
    seed=_seed("zoo.phase/noisy"),
    n_static=700,
    n_routines=70,
    mix=KernelMix(
        biased_strong=0.25, biased_noisy=0.30, loop=0.05, pattern=0.05,
        parity=0.10, history_fn=0.20, local_pattern=0.05, nested_loop=0.00,
    ),
)

#: Every zoo source, in registry/report order.
ZOO_SOURCES = (
    MarkovChainSource(label="zoo.markov", seed=_seed("zoo.markov")),
    LoopNestSource(label="zoo.loopnest", seed=_seed("zoo.loopnest")),
    PhaseChangeSource(
        label="zoo.phase",
        segments=(_PHASE_LOOPY, _PHASE_NOISY),
        phase_length=1_200,
    ),
    InterferenceSource(
        label="zoo.interference",
        primary=MarkovChainSource(
            label="zoo.interference/fg", seed=_seed("zoo.interference/fg")
        ),
        secondary=LoopNestSource(
            label="zoo.interference/bg", seed=_seed("zoo.interference/bg")
        ),
        quantum=48,
        pc_window_bits=13,
        seed=_seed("zoo.interference"),
    ),
    ConfidenceInversionSource(
        label="zoo.jrs-inversion", seed=_seed("zoo.jrs-inversion")
    ),
    TagAliasingStormSource(label="zoo.tag-storm", seed=_seed("zoo.tag-storm")),
    LinearlyInseparableSource(label="zoo.xor", seed=_seed("zoo.xor")),
)

#: Zoo names in registry order (the sweep/artifact trace axis).
ZOO_SOURCE_NAMES: tuple[str, ...] = tuple(source.name for source in ZOO_SOURCES)

#: The estimator-breaking subset.
ADVERSARIAL_SOURCE_NAMES: tuple[str, ...] = (
    "zoo.jrs-inversion", "zoo.tag-storm", "zoo.xor",
)

for _source in ZOO_SOURCES:
    register_source(_source)
