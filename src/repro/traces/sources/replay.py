"""On-disk RTRC replay as a :class:`TraceSource`.

``file:<path>`` names resolve here: the file (plain or ``.gz``) is
re-opened and streamed on every materialization through
:class:`repro.traces.io.TraceReader`, so multi-million-branch traces
replay in bounded memory.  The source name embeds the path, which makes
replay jobs flow through sweep spec hashing like any other trace name —
two sweeps over the same file share cache entries, and renaming/moving
the file changes the identity (on purpose: the name is the provenance).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from repro.traces.io import TraceReader
from repro.traces.sources.base import FILE_PREFIX, TraceSource
from repro.traces.types import BranchRecord

__all__ = ["FileReplaySource"]


@dataclass(frozen=True)
class FileReplaySource(TraceSource):
    """Replay a trace file written by :func:`repro.traces.io.write_trace`.

    ``records(n)`` yields at most ``n`` records — a file shorter than
    the requested length replays in full (the simulator simply sees a
    shorter trace), which keeps prefix-stability trivially true.
    """

    path: str

    @property
    def name(self) -> str:
        return f"{FILE_PREFIX}{self.path}"

    def spec_dict(self) -> dict:
        return {"kind": "file-replay", "path": str(self.path)}

    @property
    def file_path(self) -> Path:
        return Path(self.path)

    def records(self, n_branches: int) -> Iterator[BranchRecord]:
        if n_branches < 0:
            raise ValueError(f"n_branches must be non-negative, got {n_branches}")
        remaining = n_branches
        with TraceReader(self.file_path) as reader:
            for record in reader.iter_records():
                if remaining <= 0:
                    return
                yield record
                remaining -= 1
