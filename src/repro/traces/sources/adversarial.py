"""Adversarial trace generators: estimator-breaking branch streams.

Each source deterministically targets one estimator family's blind spot:

* :class:`ConfidenceInversionSource` (JRS/EJRS) — every static branch
  holds its direction for a *period* of executions, then flips.  A
  resetting-counter estimator with threshold ``T`` reaches high
  confidence only after ``T`` consecutive correct predictions; with the
  period tuned just past the re-learn + build-up time, the first (often
  only) high-confidence prediction of each period lands exactly on the
  flip — high confidence becomes *anti-correlated* with correctness.
  The period is not guessed: :func:`_searched_period` simulates a small
  probe stream for every candidate against gshare + JRS and picks the
  period with the worst high-confidence precision (PVP), a
  deterministic search.
* :class:`TagAliasingStormSource` (TAGE) — many static branches whose
  PCs differ only above the table index width, each with a short
  conflicting alternation pattern: tagged entries are allocated,
  stolen and mispredict continuously (allocation churn + tag aliasing).
* :class:`LinearlyInseparableSource` (perceptron) — outcomes are the
  XOR of two global-history bits, the textbook linearly-inseparable
  function a single perceptron layer cannot represent; noise branches
  keep the history ergodic.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterator

from repro.common.rng import SplitMix64
from repro.traces.sources.base import TraceSource
from repro.traces.types import BranchRecord, Trace

__all__ = [
    "ConfidenceInversionSource",
    "TagAliasingStormSource",
    "LinearlyInseparableSource",
]


@dataclass(frozen=True)
class ConfidenceInversionSource(TraceSource):
    """Periodic direction flips tuned (by search) to invert JRS confidence.

    ``n_static`` branches execute round-robin; branch ``i`` flips its
    direction every ``period`` of its own executions, phase-staggered so
    flips spread evenly through the stream.  ``n_static`` exceeds the
    JRS/gshare history length, so a branch's own flip does not disturb
    its next index context — the estimator walks confidently into every
    flip.
    """

    label: str
    seed: int
    n_static: int = 32
    candidate_periods: tuple[int, ...] = (17, 18, 19, 20, 22, 26, 34, 50)
    probe_branches: int = 2_048
    insts_per_branch: tuple[int, int] = (3, 8)
    pc_base: int = 0x0042_0000

    def __post_init__(self) -> None:
        if self.n_static < 1:
            raise ValueError(f"n_static must be >= 1, got {self.n_static}")
        if not self.candidate_periods:
            raise ValueError("candidate_periods must be non-empty")
        if any(p < 2 for p in self.candidate_periods):
            raise ValueError(
                f"candidate periods must be >= 2, got {self.candidate_periods}"
            )
        if self.probe_branches < 64:
            raise ValueError(
                f"probe_branches must be >= 64, got {self.probe_branches}"
            )

    @property
    def name(self) -> str:
        return self.label

    def spec_dict(self) -> dict:
        return {
            "kind": "confidence-inversion", "label": self.label,
            "seed": self.seed, "n_static": self.n_static,
            "candidate_periods": list(self.candidate_periods),
            "probe_branches": self.probe_branches,
            "insts_per_branch": list(self.insts_per_branch),
            "pc_base": self.pc_base,
        }

    @property
    def period(self) -> int:
        """The searched flip period (memoized per source)."""
        return _searched_period(self)

    def _stream(self, period: int, n_branches: int) -> Iterator[BranchRecord]:
        rng = SplitMix64(self.seed)
        pcs = []
        bases = []
        phases = []
        pc = self.pc_base
        for index in range(self.n_static):
            pc += 4 + 4 * rng.next_below(8)
            pcs.append(pc)
            bases.append(bool(rng.next_u64() & 1))
            # Stagger flips evenly through the round-robin schedule.
            phases.append((index * period) // max(1, self.n_static))
        execs = [0] * self.n_static
        inst_lo, inst_hi = self.insts_per_branch
        inst_span = inst_hi - inst_lo + 1
        for emitted in range(n_branches):
            i = emitted % self.n_static
            flips = (execs[i] + phases[i]) // period
            taken = bases[i] ^ bool(flips & 1)
            execs[i] += 1
            yield BranchRecord(pcs[i], taken, inst_lo + rng.next_below(inst_span))

    def records(self, n_branches: int) -> Iterator[BranchRecord]:
        return self._stream(self.period, n_branches)


@lru_cache(maxsize=32)
def _searched_period(source: ConfidenceInversionSource) -> int:
    """Deterministic search: the candidate period with the worst
    gshare + JRS high-confidence precision on a probe stream."""
    from repro.confidence.jrs import JrsEstimator
    from repro.predictors.gshare import GsharePredictor
    from repro.sim.engine import simulate_binary

    best_period = source.candidate_periods[0]
    best_pvp = float("inf")
    for period in source.candidate_periods:
        trace = Trace.from_records(
            f"{source.label}/probe-p{period}",
            source._stream(period, source.probe_branches),
        )
        confusion, _ = simulate_binary(
            trace,
            GsharePredictor(),
            JrsEstimator(),
            warmup_branches=source.probe_branches // 4,
            backend="reference",
        )
        high = confusion.high_correct + confusion.high_incorrect
        pvp = confusion.high_correct / high if high else float("inf")
        if pvp < best_pvp:
            best_pvp = pvp
            best_period = period
    return best_period


@dataclass(frozen=True)
class TagAliasingStormSource(TraceSource):
    """PC-aliased conflicting patterns: a tagged-table allocation storm.

    ``n_aliases`` branches whose PCs differ only at bit ``log_stride+2``
    and above execute round-robin, so they collide in any table indexed
    by fewer than ``log_stride`` PC bits.  Each branch alternates
    direction with its own short period and phase, so colliding entries
    are trained in conflicting directions and tagged components churn
    allocations instead of converging.
    """

    label: str
    seed: int
    n_aliases: int = 96
    log_stride: int = 14
    alternation_periods: tuple[int, ...] = (1, 2, 3)
    insts_per_branch: tuple[int, int] = (3, 8)
    pc_base: int = 0x0044_0000

    def __post_init__(self) -> None:
        if self.n_aliases < 1:
            raise ValueError(f"n_aliases must be >= 1, got {self.n_aliases}")
        if not 2 <= self.log_stride <= 40:
            raise ValueError(f"log_stride must be in [2, 40], got {self.log_stride}")
        if not self.alternation_periods or any(
            p < 1 for p in self.alternation_periods
        ):
            raise ValueError(
                f"alternation periods must be >= 1, got {self.alternation_periods}"
            )

    @property
    def name(self) -> str:
        return self.label

    def spec_dict(self) -> dict:
        return {
            "kind": "tag-aliasing-storm", "label": self.label, "seed": self.seed,
            "n_aliases": self.n_aliases, "log_stride": self.log_stride,
            "alternation_periods": list(self.alternation_periods),
            "insts_per_branch": list(self.insts_per_branch),
            "pc_base": self.pc_base,
        }

    def records(self, n_branches: int) -> Iterator[BranchRecord]:
        rng = SplitMix64(self.seed)
        stride = 1 << (self.log_stride + 2)
        branches = []
        for index in range(self.n_aliases):
            branches.append({
                "pc": self.pc_base + index * stride,
                "period": self.alternation_periods[
                    rng.next_below(len(self.alternation_periods))
                ],
                "phase": rng.next_below(64),
                "execs": 0,
            })
        inst_lo, inst_hi = self.insts_per_branch
        inst_span = inst_hi - inst_lo + 1
        for emitted in range(n_branches):
            branch = branches[emitted % self.n_aliases]
            taken = bool(
                ((branch["execs"] + branch["phase"]) // branch["period"]) & 1
            )
            branch["execs"] += 1
            yield BranchRecord(
                branch["pc"], taken, inst_lo + rng.next_below(inst_span)
            )


@dataclass(frozen=True)
class LinearlyInseparableSource(TraceSource):
    """XOR-of-history outcomes: the perceptron's blind spot.

    Each XOR branch resolves as the exclusive-or of two fixed global
    history positions — a function with zero linear correlation to any
    single history bit, so a perceptron (a linear separator over history
    bits) cannot learn it while table-based predictors can.  Interleaved
    noise branches keep the history stream ergodic (an all-XOR stream
    can collapse to a fixed point).
    """

    label: str
    seed: int
    n_xor: int = 8
    n_noise: int = 1
    tap_range: tuple[int, int] = (2, 6)
    insts_per_branch: tuple[int, int] = (3, 8)
    pc_base: int = 0x0046_0000

    def __post_init__(self) -> None:
        if self.n_xor < 1:
            raise ValueError(f"n_xor must be >= 1, got {self.n_xor}")
        if self.n_noise < 1:
            raise ValueError(f"n_noise must be >= 1, got {self.n_noise}")
        lo, hi = self.tap_range
        if lo < 1 or hi <= lo:
            raise ValueError(f"tap_range must satisfy 1 <= min < max, got {self.tap_range}")

    @property
    def name(self) -> str:
        return self.label

    def spec_dict(self) -> dict:
        return {
            "kind": "linearly-inseparable", "label": self.label, "seed": self.seed,
            "n_xor": self.n_xor, "n_noise": self.n_noise,
            "tap_range": list(self.tap_range),
            "insts_per_branch": list(self.insts_per_branch),
            "pc_base": self.pc_base,
        }

    def records(self, n_branches: int) -> Iterator[BranchRecord]:
        rng = SplitMix64(self.seed)
        lo, hi = self.tap_range
        branches = []
        pc = self.pc_base
        for _ in range(self.n_xor):
            pc += 4 + 4 * rng.next_below(8)
            tap_a = lo + rng.next_below(hi - lo + 1)
            tap_b = lo + rng.next_below(hi - lo + 1)
            if tap_b == tap_a:
                tap_b = tap_a + 1
            branches.append(("xor", pc, tap_a, tap_b))
        for _ in range(self.n_noise):
            pc += 4 + 4 * rng.next_below(8)
            branches.append(("noise", pc, 0, 0))
        # Deterministic shuffle so noise interleaves with XOR branches.
        order = list(range(len(branches)))
        for i in range(len(order) - 1, 0, -1):
            j = rng.next_below(i + 1)
            order[i], order[j] = order[j], order[i]
        schedule = [branches[i] for i in order]
        inst_lo, inst_hi = self.insts_per_branch
        inst_span = inst_hi - inst_lo + 1
        history = 0
        for emitted in range(n_branches):
            kind, branch_pc, tap_a, tap_b = schedule[emitted % len(schedule)]
            if kind == "xor":
                taken = bool(((history >> tap_a) ^ (history >> tap_b)) & 1)
            else:
                taken = bool(rng.next_u64() & 1)
            history = ((history << 1) | int(taken)) & 0xFFFF_FFFF
            yield BranchRecord(
                branch_pc, taken, inst_lo + rng.next_below(inst_span)
            )
