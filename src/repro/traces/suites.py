"""CBP-1 and CBP-2 synthetic suite registries.

The paper evaluates on the 20 CBP-1 traces (FP-1..5, INT-1..5, MM-1..5,
SERV-1..5) and the 20 CBP-2 traces (SPEC JVM98 / SPEC CPU names).  The
original trace files are no longer distributed, so each name maps here to a
:class:`repro.traces.workload.WorkloadSpec` whose behaviour mix matches the
family's published character (see DESIGN.md §2):

* **FP**: loop-dominated floating point, few static branches, strongly
  biased — very low misprediction rates;
* **INT**: mixed integer codes with real history correlation;
* **MM**: multimedia with data-dependent (noisy) branches;
* **SERV**: server codes with very large static branch working sets that
  put capacity/aliasing pressure on small predictors;
* CBP-2 names are mapped individually (gzip/twolf noisy, gcc/javac large
  working set, mpegaudio/eon highly predictable, ...).

Per-name seeds make every trace deterministic and distinct.
"""

from __future__ import annotations

import functools
import os
import zlib

from repro.traces.types import Trace
from repro.traces.workload import KernelMix, SyntheticWorkload, WorkloadSpec

__all__ = [
    "CBP1_TRACE_NAMES",
    "CBP2_TRACE_NAMES",
    "FIGURE4_TRACE_NAMES",
    "trace_spec",
    "cbp1_trace",
    "cbp2_trace",
    "cbp1_suite",
    "cbp2_suite",
    "default_trace_length",
]

CBP1_TRACE_NAMES: tuple[str, ...] = (
    "FP-1", "FP-2", "FP-3", "FP-4", "FP-5",
    "INT-1", "INT-2", "INT-3", "INT-4", "INT-5",
    "MM-1", "MM-2", "MM-3", "MM-4", "MM-5",
    "SERV-1", "SERV-2", "SERV-3", "SERV-4", "SERV-5",
)

CBP2_TRACE_NAMES: tuple[str, ...] = (
    "164.gzip", "175.vpr", "176.gcc", "181.mcf", "186.crafty",
    "197.parser", "201.compress", "202.jess", "205.raytrace", "209.db",
    "213.javac", "222.mpegaudio", "227.mtrt", "228.jack", "252.eon",
    "253.perlbmk", "254.gap", "255.vortex", "256.bzip2", "300.twolf",
)

#: The CBP-2 traces shown in the paper's Figures 4 and 6 (the caption says
#: "7 CBP2 traces"; the plotted axis labels are these six benchmarks).
FIGURE4_TRACE_NAMES: tuple[str, ...] = (
    "164.gzip", "175.vpr", "176.gcc", "181.mcf", "186.crafty", "197.parser",
)

_DEFAULT_TRACE_LENGTH = 50_000


def default_trace_length() -> int:
    """Default dynamic branch count per trace.

    The paper's traces are ~30 M instructions; we default to 50 000
    branches (a few hundred thousand instructions) so the pure-Python
    simulator finishes a full suite sweep in minutes.  The ``REPRO_SCALE``
    environment variable multiplies the default (e.g. ``REPRO_SCALE=10``
    for 500 000-branch traces).
    """
    scale = float(os.environ.get("REPRO_SCALE", "1"))
    if scale <= 0:
        raise ValueError(f"REPRO_SCALE must be positive, got {scale}")
    return int(_DEFAULT_TRACE_LENGTH * scale)


# ---------------------------------------------------------------------------
# family profiles
# ---------------------------------------------------------------------------

def _fp_profile(index: int) -> dict:
    """Loop-heavy, strongly biased floating-point codes.

    Loop kernels execute their whole burst per visit, so a small static
    loop fraction dominates dynamic execution — like FP inner loops.
    """
    return dict(
        n_static=220 + 40 * index,
        n_routines=24 + 4 * index,
        routine_len=(5, 14),
        routine_zipf_s=1.1,
        routine_repeat=(4, 16),
        mix=KernelMix(
            biased_strong=0.68,
            biased_noisy=0.008 + 0.004 * index,
            loop=0.10,
            pattern=0.04,
            parity=0.06,
            history_fn=0.02,
            local_pattern=0.02,
            nested_loop=0.05,
        ),
        strong_bias=(0.996, 0.9998),
        noisy_bias=(0.75, 0.90),
        loop_trips=(4, 48),
        parity_depth=(3, 8),
        history_fn_depth=(4, 8),
        insts_per_branch=(8, 18),
        correlated_noise=0.004,
    )


def _int_profile(index: int) -> dict:
    """Mixed integer codes with genuine history correlation."""
    return dict(
        n_static=460 + 70 * index,
        n_routines=55 + 9 * index,
        routine_len=(4, 10),
        routine_zipf_s=0.9,
        routine_repeat=(4, 14),
        mix=KernelMix(
            biased_strong=0.70,
            biased_noisy=0.010 + 0.003 * index,
            loop=0.05,
            pattern=0.020,
            parity=0.065,
            history_fn=0.050,
            local_pattern=0.015,
            nested_loop=0.012,
        ),
        strong_bias=(0.994, 0.9998),
        noisy_bias=(0.76, 0.92),
        loop_trips=(2, 16),
        pattern_len=(2, 5),
        parity_depth=(3, 10),
        history_fn_depth=(4, 11),
        insts_per_branch=(3, 8),
        correlated_noise=0.010,
    )


def _mm_profile(index: int) -> dict:
    """Multimedia: data-dependent branches, some intrinsically noisy."""
    return dict(
        n_static=420 + 60 * index,
        n_routines=45 + 7 * index,
        routine_len=(4, 10),
        routine_zipf_s=0.8,
        routine_repeat=(3, 12),
        mix=KernelMix(
            biased_strong=0.62,
            biased_noisy=0.024 + 0.006 * index,
            loop=0.06,
            pattern=0.022,
            parity=0.070,
            history_fn=0.060,
            local_pattern=0.020,
            nested_loop=0.016,
        ),
        strong_bias=(0.993, 0.9997),
        noisy_bias=(0.66, 0.86),
        loop_trips=(2, 24),
        pattern_len=(2, 6),
        parity_depth=(3, 9),
        history_fn_depth=(4, 12),
        insts_per_branch=(4, 10),
        correlated_noise=0.025,
    )


def _serv_profile(index: int) -> dict:
    """Server codes: huge static working set, flat routine popularity.

    The working set itself creates the difficulty (bimodal aliasing and
    tagged-table capacity pressure on the small predictor), so the branch
    behaviours stay mostly easy.
    """
    return dict(
        n_static=1050 + 190 * index,
        n_routines=150 + 28 * index,
        routine_len=(3, 9),
        routine_zipf_s=0.45,
        routine_repeat=(3, 10),
        mix=KernelMix(
            biased_strong=0.80,
            biased_noisy=0.008,
            loop=0.030,
            pattern=0.022,
            parity=0.048,
            history_fn=0.026,
            local_pattern=0.016,
            nested_loop=0.012,
        ),
        strong_bias=(0.995, 0.9998),
        noisy_bias=(0.76, 0.92),
        loop_trips=(2, 14),
        pattern_len=(2, 5),
        parity_depth=(3, 7),
        history_fn_depth=(4, 7),
        insts_per_branch=(4, 10),
        correlated_noise=0.012,
    )


# CBP-2 per-benchmark profiles, expressed as (builder, difficulty knobs).
# predictable  -> FP-like;  noisy -> MM-like with more noise;
# big_ws -> SERV-like;      mixed -> INT-like.
_CBP2_PROFILES: dict[str, tuple[str, dict]] = {
    "164.gzip": ("noisy", dict(noisy_boost=0.07, noise=0.05)),
    "175.vpr": ("noisy", dict(noisy_boost=0.05, noise=0.05)),
    "176.gcc": ("big_ws", dict(n_static=2600, n_routines=340)),
    "181.mcf": ("mixed", dict(noisy_boost=0.03)),
    "186.crafty": ("mixed", dict(n_static=900)),
    "197.parser": ("mixed", dict(noisy_boost=0.04, n_static=800)),
    "201.compress": ("noisy", dict(noisy_boost=0.03, noise=0.04)),
    "202.jess": ("big_ws", dict(n_static=1700, n_routines=230)),
    "205.raytrace": ("predictable", dict()),
    "209.db": ("big_ws", dict(n_static=1500, n_routines=200, noisy_boost=0.02)),
    "213.javac": ("big_ws", dict(n_static=2100, n_routines=280)),
    "222.mpegaudio": ("predictable", dict(loop_boost=0.08)),
    "227.mtrt": ("predictable", dict()),
    "228.jack": ("mixed", dict(n_static=1000)),
    "252.eon": ("predictable", dict()),
    "253.perlbmk": ("big_ws", dict(n_static=1800, n_routines=240)),
    "254.gap": ("mixed", dict()),
    "255.vortex": ("big_ws", dict(n_static=1900, n_routines=250)),
    "256.bzip2": ("noisy", dict(noisy_boost=0.05, noise=0.05)),
    "300.twolf": ("noisy", dict(noisy_boost=0.10, noise=0.06)),
}


def _cbp2_profile(name: str, index: int) -> dict:
    kind, knobs = _CBP2_PROFILES[name]
    if kind == "predictable":
        profile = _fp_profile(index % 5)
        profile["insts_per_branch"] = (5, 12)
        if "loop_boost" in knobs:
            mix = profile["mix"]
            profile["mix"] = KernelMix(
                biased_strong=mix.biased_strong,
                biased_noisy=mix.biased_noisy,
                loop=mix.loop + knobs["loop_boost"],
                pattern=mix.pattern,
                parity=mix.parity,
                history_fn=mix.history_fn,
                local_pattern=mix.local_pattern,
                nested_loop=mix.nested_loop,
            )
        return profile
    if kind == "noisy":
        profile = _mm_profile(index % 5)
        boost = knobs.get("noisy_boost", 0.0)
        mix = profile["mix"]
        profile["mix"] = KernelMix(
            biased_strong=max(0.05, mix.biased_strong - boost),
            biased_noisy=mix.biased_noisy + boost,
            loop=mix.loop,
            pattern=mix.pattern,
            parity=mix.parity,
            history_fn=mix.history_fn,
            local_pattern=mix.local_pattern,
            nested_loop=mix.nested_loop,
        )
        profile["correlated_noise"] = knobs.get("noise", profile["correlated_noise"])
        profile["insts_per_branch"] = (3, 8)
        return profile
    if kind == "big_ws":
        profile = _serv_profile(index % 5)
        profile["n_static"] = knobs.get("n_static", profile["n_static"])
        profile["n_routines"] = knobs.get("n_routines", profile["n_routines"])
        if "noisy_boost" in knobs:
            mix = profile["mix"]
            boost = knobs["noisy_boost"]
            profile["mix"] = KernelMix(
                biased_strong=max(0.05, mix.biased_strong - boost),
                biased_noisy=mix.biased_noisy + boost,
                loop=mix.loop,
                pattern=mix.pattern,
                parity=mix.parity,
                history_fn=mix.history_fn,
                local_pattern=mix.local_pattern,
                nested_loop=mix.nested_loop,
            )
        profile["insts_per_branch"] = (4, 9)
        return profile
    if kind == "mixed":
        profile = _int_profile(index % 5)
        profile["n_static"] = knobs.get("n_static", profile["n_static"])
        if "noisy_boost" in knobs:
            mix = profile["mix"]
            boost = knobs["noisy_boost"]
            profile["mix"] = KernelMix(
                biased_strong=max(0.05, mix.biased_strong - boost),
                biased_noisy=mix.biased_noisy + boost,
                loop=mix.loop,
                pattern=mix.pattern,
                parity=mix.parity,
                history_fn=mix.history_fn,
                local_pattern=mix.local_pattern,
                nested_loop=mix.nested_loop,
            )
        return profile
    raise ValueError(f"unknown CBP-2 profile kind {kind!r}")


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

def trace_spec(name: str) -> WorkloadSpec:
    """Return the :class:`WorkloadSpec` for any CBP-1 or CBP-2 trace name."""
    if name in CBP1_TRACE_NAMES:
        family, _, index_text = name.partition("-")
        index = int(index_text) - 1
        builder = {
            "FP": _fp_profile,
            "INT": _int_profile,
            "MM": _mm_profile,
            "SERV": _serv_profile,
        }[family]
        profile = builder(index)
        seed = zlib.crc32(f"cbp1/{name}".encode())
        return WorkloadSpec(name=name, seed=seed, **profile)
    if name in CBP2_TRACE_NAMES:
        index = CBP2_TRACE_NAMES.index(name)
        profile = _cbp2_profile(name, index)
        seed = zlib.crc32(f"cbp2/{name}".encode())
        return WorkloadSpec(name=name, seed=seed, **profile)
    raise KeyError(f"unknown trace name {name!r}")


@functools.lru_cache(maxsize=128)
def _generate_cached(name: str, n_branches: int) -> Trace:
    return SyntheticWorkload(trace_spec(name)).generate(n_branches)


def cbp1_trace(name: str, n_branches: int | None = None) -> Trace:
    """Generate (and cache) a named CBP-1 trace."""
    if name not in CBP1_TRACE_NAMES:
        raise KeyError(f"{name!r} is not a CBP-1 trace name")
    return _generate_cached(name, n_branches or default_trace_length())


def cbp2_trace(name: str, n_branches: int | None = None) -> Trace:
    """Generate (and cache) a named CBP-2 trace."""
    if name not in CBP2_TRACE_NAMES:
        raise KeyError(f"{name!r} is not a CBP-2 trace name")
    return _generate_cached(name, n_branches or default_trace_length())


def cbp1_suite(n_branches: int | None = None, names: tuple[str, ...] = CBP1_TRACE_NAMES) -> list[Trace]:
    """Generate the (sub)suite of CBP-1 traces, in the paper's order."""
    return [cbp1_trace(name, n_branches) for name in names]


def cbp2_suite(n_branches: int | None = None, names: tuple[str, ...] = CBP2_TRACE_NAMES) -> list[Trace]:
    """Generate the (sub)suite of CBP-2 traces, in the paper's order."""
    return [cbp2_trace(name, n_branches) for name in names]
