"""Branch behaviour kernels.

Each *static branch* in a synthetic workload owns a kernel instance that
decides the branch's outcome each time the branch executes.  The kernel
families mirror the branch populations a branch-prediction study cares
about, because the TAGE confidence classes are a function of these
behaviour categories (DESIGN.md §2):

* :class:`BiasedKernel` — independently random with a fixed taken
  probability.  Strongly biased instances (p near 0 or 1) are
  bimodal-predictable (``high-conf-bim``); mid-range instances are
  intrinsically unpredictable and feed the low-confidence classes.
* :class:`LoopKernel` — ``n-1`` taken iterations then one not-taken exit;
  predictable by a tagged component whose history covers the trip count.
* :class:`PatternKernel` — a fixed repeating direction pattern.
* :class:`HistoryParityKernel` — outcome is the parity of the last *k*
  global outcomes (plus optional noise): the canonical
  history-correlated branch that only a global-history predictor learns.
* :class:`HistoryFunctionKernel` — outcome is a pseudo-random but *fixed*
  boolean function of the last *k* global outcomes: learnable, but only
  with enough tagged-table capacity (one entry per reachable history).
* :class:`LocalPatternKernel` — a pattern over the branch's *own*
  occurrences, which a global-history predictor sees through the
  interleaving of other branches.
* :class:`NestedLoopKernel` — inner loop whose trip count varies with an
  outer loop, exercising longer histories.

Kernels are deliberately tiny state machines with an explicit
``next_outcome(global_history) -> bool`` interface; ``global_history``
packs the most recent global outcomes in bit 0 (newest) upward.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

from repro.common.bitops import mask, parity
from repro.common.rng import SplitMix64

__all__ = [
    "BranchKernel",
    "BiasedKernel",
    "LoopKernel",
    "PatternKernel",
    "HistoryParityKernel",
    "HistoryFunctionKernel",
    "LocalPatternKernel",
    "NestedLoopKernel",
]


class BranchKernel(ABC):
    """Outcome model for one static branch."""

    @abstractmethod
    def next_outcome(self, global_history: int) -> bool:
        """Resolve the next execution of this branch.

        Args:
            global_history: recent global branch outcomes, newest in bit 0.
        """

    def reset(self) -> None:
        """Return the kernel to its initial state (default: stateless)."""


class BiasedKernel(BranchKernel):
    """Independently random outcome, taken with probability ``p_taken``.

    >>> k = BiasedKernel(p_taken=1.0, seed=1)
    >>> k.next_outcome(0)
    True
    """

    __slots__ = ("p_taken", "_seed", "_rng")

    def __init__(self, p_taken: float, seed: int) -> None:
        if not 0.0 <= p_taken <= 1.0:
            raise ValueError(f"p_taken must be in [0, 1], got {p_taken}")
        self.p_taken = p_taken
        self._seed = seed
        self._rng = SplitMix64(seed)

    def next_outcome(self, global_history: int) -> bool:
        return self._rng.next_float() < self.p_taken

    def reset(self) -> None:
        self._rng = SplitMix64(self._seed)


class LoopKernel(BranchKernel):
    """Loop back-edge: taken ``trip_count - 1`` times, then not taken once.

    A trip count of 1 degenerates to always-not-taken.

    >>> k = LoopKernel(trip_count=3)
    >>> [k.next_outcome(0) for _ in range(6)]
    [True, True, False, True, True, False]
    """

    __slots__ = ("trip_count", "_iteration")

    def __init__(self, trip_count: int) -> None:
        if trip_count < 1:
            raise ValueError(f"trip count must be >= 1, got {trip_count}")
        self.trip_count = trip_count
        self._iteration = 0

    def next_outcome(self, global_history: int) -> bool:
        self._iteration += 1
        if self._iteration >= self.trip_count:
            self._iteration = 0
            return False
        return True

    def reset(self) -> None:
        self._iteration = 0


class PatternKernel(BranchKernel):
    """Fixed cyclic direction pattern.

    >>> k = PatternKernel((True, False, False))
    >>> [k.next_outcome(0) for _ in range(4)]
    [True, False, False, True]
    """

    __slots__ = ("pattern", "_position")

    def __init__(self, pattern: Sequence[bool]) -> None:
        if not pattern:
            raise ValueError("pattern must be non-empty")
        self.pattern = tuple(bool(p) for p in pattern)
        self._position = 0

    def next_outcome(self, global_history: int) -> bool:
        outcome = self.pattern[self._position]
        self._position = (self._position + 1) % len(self.pattern)
        return outcome

    def reset(self) -> None:
        self._position = 0


class HistoryParityKernel(BranchKernel):
    """Outcome is the parity of the last ``depth`` global outcomes,
    inverted with probability ``noise``.

    A global-history predictor whose history length covers ``depth`` learns
    this exactly; a bimodal predictor sees a ~50 % coin.
    """

    __slots__ = ("depth", "noise", "_seed", "_rng")

    def __init__(self, depth: int, noise: float = 0.0, seed: int = 0) -> None:
        if depth <= 0:
            raise ValueError(f"depth must be positive, got {depth}")
        if not 0.0 <= noise <= 1.0:
            raise ValueError(f"noise must be in [0, 1], got {noise}")
        self.depth = depth
        self.noise = noise
        self._seed = seed
        self._rng = SplitMix64(seed)

    def next_outcome(self, global_history: int) -> bool:
        outcome = bool(parity(global_history & mask(self.depth)))
        if self.noise and self._rng.next_float() < self.noise:
            return not outcome
        return outcome

    def reset(self) -> None:
        self._rng = SplitMix64(self._seed)


class HistoryFunctionKernel(BranchKernel):
    """Outcome is a fixed pseudo-random boolean function of the last
    ``depth`` global outcomes, inverted with probability ``noise``.

    Unlike parity, the function has no compact structure, so a predictor
    must dedicate a table entry per reachable history value — this is the
    kernel that makes predictor *capacity* matter.
    """

    __slots__ = ("depth", "noise", "_fn_seed", "_seed", "_rng")

    def __init__(self, depth: int, noise: float = 0.0, seed: int = 0) -> None:
        if depth <= 0:
            raise ValueError(f"depth must be positive, got {depth}")
        if not 0.0 <= noise <= 1.0:
            raise ValueError(f"noise must be in [0, 1], got {noise}")
        self.depth = depth
        self.noise = noise
        self._fn_seed = SplitMix64(seed ^ 0x5BD1E995).next_u64()
        self._seed = seed
        self._rng = SplitMix64(seed)

    def next_outcome(self, global_history: int) -> bool:
        window = global_history & mask(self.depth)
        # Fixed hash of (function seed, history window): a stable truth table.
        h = SplitMix64(self._fn_seed ^ window).next_u64()
        outcome = bool(h & 1)
        if self.noise and self._rng.next_float() < self.noise:
            return not outcome
        return outcome

    def reset(self) -> None:
        self._rng = SplitMix64(self._seed)


class LocalPatternKernel(BranchKernel):
    """Pattern over the branch's own executions (local history behaviour).

    Equivalent to :class:`PatternKernel` in isolation, but the pattern is
    generated pseudo-randomly from a seed with a given length, so workload
    specs can create many distinct instances cheaply.
    """

    __slots__ = ("length", "_pattern", "_position")

    def __init__(self, length: int, seed: int) -> None:
        if length <= 0:
            raise ValueError(f"pattern length must be positive, got {length}")
        self.length = length
        rng = SplitMix64(seed)
        self._pattern = tuple(bool(rng.next_u64() & 1) for _ in range(length))
        self._position = 0

    @property
    def pattern(self) -> tuple[bool, ...]:
        return self._pattern

    def next_outcome(self, global_history: int) -> bool:
        outcome = self._pattern[self._position]
        self._position = (self._position + 1) % self.length
        return outcome

    def reset(self) -> None:
        self._position = 0


class NestedLoopKernel(BranchKernel):
    """Inner-loop back-edge whose trip count cycles with an outer loop.

    The sequence of trip counts repeats with period ``len(trip_counts)``,
    e.g. ``(4, 4, 7)`` produces TTTN TTTN TTTTTTN forever.  Correct
    prediction of every exit requires history covering the longest trip
    count plus the phase of the outer loop.
    """

    __slots__ = ("trip_counts", "_outer_index", "_iteration")

    def __init__(self, trip_counts: Sequence[int]) -> None:
        if not trip_counts:
            raise ValueError("trip_counts must be non-empty")
        for count in trip_counts:
            if count < 1:
                raise ValueError(f"trip counts must be >= 1, got {count}")
        self.trip_counts = tuple(trip_counts)
        self._outer_index = 0
        self._iteration = 0

    def next_outcome(self, global_history: int) -> bool:
        self._iteration += 1
        if self._iteration >= self.trip_counts[self._outer_index]:
            self._iteration = 0
            self._outer_index = (self._outer_index + 1) % len(self.trip_counts)
            return False
        return True

    def reset(self) -> None:
        self._outer_index = 0
        self._iteration = 0
