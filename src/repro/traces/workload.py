"""Synthetic workload construction.

A :class:`SyntheticWorkload` models a program as a set of *routines*, each
a fixed sequence of static branches.  Execution repeatedly selects a
routine (with a Zipf-like popularity distribution, so some code is hot and
some cold) and runs through its branches; each static branch resolves its
direction with its behaviour kernel (:mod:`repro.traces.kernels`).

This structure gives the generated trace the properties the paper's
evaluation depends on:

* **program-like control flow**: loop branches execute their full
  iteration burst (T…TN) in place, routines repeat consecutively
  (inner-loop bodies), and routine succession follows a sparse
  transition graph — so (PC, global-history) contexts *recur* and the
  tagged TAGE components can actually learn, exactly like compiled code;
* a controllable static branch working set (``n_static``) so small
  predictors experience capacity/aliasing pressure like the paper's
  SERV traces;
* controllable fractions of biased / loop / pattern / history-correlated /
  noisy branches via :class:`KernelMix`.

Everything is derived deterministically from ``WorkloadSpec.seed``.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from repro.common.bitops import mask
from repro.common.rng import SplitMix64
from repro.traces.kernels import (
    BiasedKernel,
    BranchKernel,
    HistoryFunctionKernel,
    HistoryParityKernel,
    LocalPatternKernel,
    LoopKernel,
    NestedLoopKernel,
    PatternKernel,
)
from repro.traces.types import Trace

__all__ = ["KernelMix", "WorkloadSpec", "StaticBranch", "SyntheticWorkload"]

_GLOBAL_HISTORY_BITS = 32


@dataclass(frozen=True)
class KernelMix:
    """Relative weights of the branch behaviour categories.

    Weights need not sum to one; they are normalized at build time.
    """

    biased_strong: float = 0.45
    biased_noisy: float = 0.10
    loop: float = 0.12
    pattern: float = 0.08
    parity: float = 0.08
    history_fn: float = 0.09
    local_pattern: float = 0.05
    nested_loop: float = 0.03

    def as_items(self) -> list[tuple[str, float]]:
        items = [
            ("biased_strong", self.biased_strong),
            ("biased_noisy", self.biased_noisy),
            ("loop", self.loop),
            ("pattern", self.pattern),
            ("parity", self.parity),
            ("history_fn", self.history_fn),
            ("local_pattern", self.local_pattern),
            ("nested_loop", self.nested_loop),
        ]
        for name, weight in items:
            if weight < 0:
                raise ValueError(f"kernel mix weight {name} must be >= 0, got {weight}")
        if sum(weight for _, weight in items) <= 0:
            raise ValueError("kernel mix weights must not all be zero")
        return items


@dataclass(frozen=True)
class WorkloadSpec:
    """Full parameterization of a synthetic workload.

    Attributes:
        name: trace name (e.g. ``"INT-1"`` or ``"300.twolf"``).
        seed: master seed; two specs differing only in seed produce
            statistically similar but distinct traces.
        n_static: number of static branches (the working set).
        n_routines: number of routines the static branches are spread over.
        routine_len: (min, max) branches per routine.
        routine_zipf_s: Zipf exponent of routine popularity (0 = uniform;
            larger = hotter hot code).
        routine_repeat: (min, max) consecutive executions per routine
            visit (inner-loop style repetition; this is what makes
            global-history contexts recur).
        transition_locality: probability that the next routine comes from
            this routine's small successor set rather than a global
            Zipf draw (models call-graph locality).
        mix: behaviour category weights.
        strong_bias: (min, max) taken-probability magnitude for strongly
            biased branches (the direction is chosen per branch).
        noisy_bias: (min, max) taken probability for noisy branches.
        loop_trips: (min, max) loop trip counts.
        pattern_len: (min, max) fixed-pattern lengths.
        parity_depth: (min, max) history depth of parity branches.
        history_fn_depth: (min, max) history depth of random-function
            branches.
        correlated_noise: probability of inverting a correlated branch's
            deterministic outcome (models data-dependent perturbation).
        insts_per_branch: (min, max) instructions per branch record.
    """

    name: str
    seed: int
    n_static: int = 600
    n_routines: int = 60
    routine_len: tuple[int, int] = (4, 16)
    routine_zipf_s: float = 0.9
    routine_repeat: tuple[int, int] = (2, 12)
    transition_locality: float = 0.85
    mix: KernelMix = field(default_factory=KernelMix)
    strong_bias: tuple[float, float] = (0.96, 0.999)
    noisy_bias: tuple[float, float] = (0.60, 0.85)
    loop_trips: tuple[int, int] = (2, 32)
    pattern_len: tuple[int, int] = (2, 8)
    parity_depth: tuple[int, int] = (3, 10)
    history_fn_depth: tuple[int, int] = (4, 9)
    correlated_noise: float = 0.01
    insts_per_branch: tuple[int, int] = (3, 10)

    def __post_init__(self) -> None:
        if self.n_static <= 0:
            raise ValueError(f"n_static must be positive, got {self.n_static}")
        if self.n_routines <= 0:
            raise ValueError(f"n_routines must be positive, got {self.n_routines}")
        if not 0.0 <= self.transition_locality <= 1.0:
            raise ValueError(
                f"transition_locality must be in [0, 1], got {self.transition_locality}"
            )
        for label, lo_hi in (
            ("routine_len", self.routine_len),
            ("routine_repeat", self.routine_repeat),
            ("loop_trips", self.loop_trips),
            ("pattern_len", self.pattern_len),
            ("parity_depth", self.parity_depth),
            ("history_fn_depth", self.history_fn_depth),
            ("insts_per_branch", self.insts_per_branch),
        ):
            lo, hi = lo_hi
            if lo < 1 or hi < lo:
                raise ValueError(f"{label} must satisfy 1 <= min <= max, got {lo_hi}")
        if not 0.0 <= self.correlated_noise <= 1.0:
            raise ValueError(f"correlated_noise must be in [0, 1], got {self.correlated_noise}")


@dataclass
class StaticBranch:
    """One static branch: an address plus its behaviour kernel."""

    pc: int
    kernel: BranchKernel
    category: str


class SyntheticWorkload:
    """Executable synthetic program built from a :class:`WorkloadSpec`.

    >>> spec = WorkloadSpec(name="demo", seed=7, n_static=50, n_routines=8)
    >>> trace = SyntheticWorkload(spec).generate(1000)
    >>> len(trace)
    1000
    """

    def __init__(self, spec: WorkloadSpec) -> None:
        self.spec = spec
        self._rng = SplitMix64(spec.seed)
        self.branches = self._build_static_branches()
        self.routines = self._build_routines()
        self._routine_cdf = self._build_routine_cdf()
        self._successors = self._build_transition_graph()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def _build_static_branches(self) -> list[StaticBranch]:
        spec = self.spec
        rng = self._rng.fork()
        categories = spec.mix.as_items()
        total_weight = sum(weight for _, weight in categories)
        cdf: list[float] = []
        acc = 0.0
        for _, weight in categories:
            acc += weight / total_weight
            cdf.append(acc)

        branches: list[StaticBranch] = []
        pc = 0x0040_0000 + rng.next_below(0x400) * 4
        for index in range(spec.n_static):
            # Spread PCs like compiled code: mostly small gaps, occasional
            # jumps to a new "function" region.  Branch PCs stay 4-aligned.
            pc += 4 + 4 * rng.next_below(12)
            if rng.next_float() < 0.05:
                pc += 0x400 + rng.next_below(0x1000) * 4
            draw = rng.next_float()
            slot = bisect.bisect_left(cdf, draw)
            slot = min(slot, len(categories) - 1)
            category = categories[slot][0]
            kernel = self._make_kernel(category, rng, index)
            branches.append(StaticBranch(pc=pc, kernel=kernel, category=category))
        return branches

    def _make_kernel(self, category: str, rng: SplitMix64, index: int) -> BranchKernel:
        spec = self.spec
        seed = rng.next_u64() ^ (index * 0x9E3779B9)
        if category == "biased_strong":
            lo, hi = spec.strong_bias
            magnitude = lo + (hi - lo) * rng.next_float()
            taken_side = rng.next_float() < 0.5
            p_taken = magnitude if taken_side else 1.0 - magnitude
            return BiasedKernel(p_taken=p_taken, seed=seed)
        if category == "biased_noisy":
            lo, hi = spec.noisy_bias
            p_taken = lo + (hi - lo) * rng.next_float()
            if rng.next_float() < 0.5:
                p_taken = 1.0 - p_taken
            return BiasedKernel(p_taken=p_taken, seed=seed)
        if category == "loop":
            lo, hi = spec.loop_trips
            return LoopKernel(trip_count=lo + rng.next_below(hi - lo + 1))
        if category == "pattern":
            lo, hi = spec.pattern_len
            length = lo + rng.next_below(hi - lo + 1)
            pattern_rng = SplitMix64(seed)
            pattern = [bool(pattern_rng.next_u64() & 1) for _ in range(length)]
            if not any(pattern):
                pattern[0] = True
            return PatternKernel(pattern)
        if category == "parity":
            lo, hi = spec.parity_depth
            depth = lo + rng.next_below(hi - lo + 1)
            return HistoryParityKernel(depth=depth, noise=spec.correlated_noise, seed=seed)
        if category == "history_fn":
            lo, hi = spec.history_fn_depth
            depth = lo + rng.next_below(hi - lo + 1)
            return HistoryFunctionKernel(depth=depth, noise=spec.correlated_noise, seed=seed)
        if category == "local_pattern":
            lo, hi = spec.pattern_len
            length = max(2, lo + rng.next_below(hi - lo + 1))
            return LocalPatternKernel(length=length, seed=seed)
        if category == "nested_loop":
            lo, hi = spec.loop_trips
            n_phases = 2 + rng.next_below(3)
            trips = [lo + rng.next_below(hi - lo + 1) for _ in range(n_phases)]
            return NestedLoopKernel(trips)
        raise ValueError(f"unknown kernel category {category!r}")

    def _build_routines(self) -> list[list[int]]:
        """Group static branches into routines.

        Loop-kernel branches get dedicated routines (an inner loop *is* a
        routine), optionally with a guard branch in front — otherwise
        their variable-length bursts would sit inside straight-line
        bodies and randomize the history offsets every other branch in
        the body depends on.  Non-loop branches form contiguous
        fixed-sequence bodies (spatial locality like compiled code).
        """
        spec = self.spec
        rng = self._rng.fork()
        lo, hi = spec.routine_len
        loop_indices = [
            i for i, branch in enumerate(self.branches)
            if branch.category in ("loop", "nested_loop")
        ]
        straight_indices = [
            i for i, branch in enumerate(self.branches)
            if branch.category not in ("loop", "nested_loop")
        ]
        routines: list[list[int]] = []
        # Straight-line bodies: contiguous, fixed sequences.
        cursor = 0
        while cursor < len(straight_indices):
            length = lo + rng.next_below(hi - lo + 1)
            routines.append(straight_indices[cursor:cursor + length])
            cursor += length
        # Loop routines: the loop branch, preceded by a guard branch from
        # the straight-line population when available.
        for loop_index in loop_indices:
            body = [loop_index]
            if straight_indices and rng.next_float() < 0.5:
                body.insert(0, straight_indices[rng.next_below(len(straight_indices))])
            routines.append(body)
        # Extra shared-code routines if the spec asks for more.
        while len(routines) < spec.n_routines:
            length = lo + rng.next_below(hi - lo + 1)
            if not straight_indices:
                break
            start = rng.next_below(len(straight_indices))
            routines.append(
                [straight_indices[(start + i) % len(straight_indices)] for i in range(length)]
            )
        return routines

    def _build_routine_cdf(self) -> list[float]:
        spec = self.spec
        weights = [
            1.0 / (rank + 1.0) ** spec.routine_zipf_s for rank in range(len(self.routines))
        ]
        total = sum(weights)
        cdf: list[float] = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            cdf.append(acc)
        return cdf

    def _build_transition_graph(self) -> list[list[int]]:
        """Per-routine successor sets (sparse call-graph locality)."""
        rng = self._rng.fork()
        n = len(self.routines)
        successors: list[list[int]] = []
        for _ in range(n):
            fanout = 2 + rng.next_below(3)
            successors.append([rng.next_below(n) for _ in range(fanout)])
        return successors

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def _pick_routine(self, rng: SplitMix64, current: int | None) -> int:
        """Next routine: mostly a successor of the current one (call-graph
        locality), otherwise a global popularity draw."""
        if current is not None and rng.next_float() < self.spec.transition_locality:
            successors = self._successors[current]
            return successors[rng.next_below(len(successors))]
        draw = rng.next_float()
        index = bisect.bisect_left(self._routine_cdf, draw)
        return min(index, len(self.routines) - 1)

    def generate(self, n_branches: int) -> Trace:
        """Execute the workload for ``n_branches`` dynamic branches.

        Control flow is program-like:

        * the workload walks a routine transition graph;
        * each routine visit executes the routine body
          ``routine_repeat``-many consecutive times (an inner loop), so
          the global-history context of every branch in the body recurs;
        * a branch backed by a loop kernel executes its entire iteration
          burst in place (taken back-edges then the not-taken exit),
          exactly like a real inner loop.
        """
        if n_branches < 0:
            raise ValueError(f"n_branches must be non-negative, got {n_branches}")
        spec = self.spec
        rng = SplitMix64(spec.seed ^ 0xC0FFEE)
        ghist = 0
        ghist_mask = mask(_GLOBAL_HISTORY_BITS)
        inst_lo, inst_hi = spec.insts_per_branch
        inst_span = inst_hi - inst_lo + 1
        repeat_lo, repeat_hi = spec.routine_repeat
        repeat_span = repeat_hi - repeat_lo + 1

        pcs: list[int] = []
        takens: list[int] = []
        insts: list[int] = []
        branches = self.branches
        routines = self.routines

        emitted = 0
        current: int | None = None
        while emitted < n_branches:
            current = self._pick_routine(rng, current)
            repeats = repeat_lo + rng.next_below(repeat_span)
            for _ in range(repeats):
                if emitted >= n_branches:
                    break
                for branch_index in routines[current]:
                    if emitted >= n_branches:
                        break
                    branch = branches[branch_index]
                    is_loop = branch.category in ("loop", "nested_loop")
                    while emitted < n_branches:
                        taken = branch.kernel.next_outcome(ghist)
                        ghist = ((ghist << 1) | int(taken)) & ghist_mask
                        pcs.append(branch.pc)
                        takens.append(int(taken))
                        insts.append(inst_lo + rng.next_below(inst_span))
                        emitted += 1
                        # Loop kernels burst until the not-taken exit;
                        # every other kernel executes once per visit.
                        if not (is_loop and taken):
                            break
        return Trace(spec.name, pcs, takens, insts)

    def reset(self) -> None:
        """Reset every kernel so the workload can be replayed from scratch."""
        for branch in self.branches:
            branch.kernel.reset()

    def category_histogram(self) -> dict[str, int]:
        """Static branch count per behaviour category (for diagnostics)."""
        histogram: dict[str, int] = {}
        for branch in self.branches:
            histogram[branch.category] = histogram.get(branch.category, 0) + 1
        return histogram
