"""Trace diagnostics.

:func:`analyze_trace` summarizes a trace's static/dynamic character —
working-set size, taken rate, per-branch bias, transition rate — which is
how we validate that each synthetic suite family lands in the band its
real counterpart occupied (e.g. SERV must have a working set in the
thousands, FP must be strongly biased).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TraceStatistics", "analyze_trace"]


@dataclass(frozen=True)
class TraceStatistics:
    """Summary statistics of one trace.

    Attributes:
        name: trace name.
        n_branches: dynamic branch count.
        n_static: distinct branch PCs (static working set).
        total_instructions: instructions covered by the trace.
        taken_rate: fraction of dynamic branches taken.
        transition_rate: fraction of dynamic branches whose direction
            differs from the same static branch's previous execution —
            a storage-free proxy for "how hard is this for a bimodal
            predictor".
        mean_dynamic_bias: dynamic-execution-weighted mean of
            ``max(p_taken, 1 - p_taken)`` per static branch — close to 1.0
            for strongly biased workloads.
        branches_per_kilo_instruction: dynamic branch density.
    """

    name: str
    n_branches: int
    n_static: int
    total_instructions: int
    taken_rate: float
    transition_rate: float
    mean_dynamic_bias: float
    branches_per_kilo_instruction: float

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.name}: {self.n_branches} branches, {self.n_static} static, "
            f"{self.total_instructions} insts, taken={self.taken_rate:.3f}, "
            f"transition={self.transition_rate:.3f}, bias={self.mean_dynamic_bias:.3f}, "
            f"br/KI={self.branches_per_kilo_instruction:.1f}"
        )


def analyze_trace(trace) -> TraceStatistics:
    """Compute :class:`TraceStatistics` for a trace in one pass."""
    taken_by_pc: dict[int, int] = {}
    count_by_pc: dict[int, int] = {}
    last_dir: dict[int, int] = {}
    transitions = 0
    taken_total = 0

    for pc, taken in zip(trace.pcs, trace.takens):
        taken_total += taken
        count_by_pc[pc] = count_by_pc.get(pc, 0) + 1
        taken_by_pc[pc] = taken_by_pc.get(pc, 0) + taken
        previous = last_dir.get(pc)
        if previous is not None and previous != taken:
            transitions += 1
        last_dir[pc] = taken

    n_branches = len(trace)
    total_instructions = trace.total_instructions
    if n_branches == 0:
        return TraceStatistics(
            name=trace.name,
            n_branches=0,
            n_static=0,
            total_instructions=0,
            taken_rate=0.0,
            transition_rate=0.0,
            mean_dynamic_bias=0.0,
            branches_per_kilo_instruction=0.0,
        )

    bias_weighted = 0.0
    for pc, count in count_by_pc.items():
        p_taken = taken_by_pc[pc] / count
        bias_weighted += count * max(p_taken, 1.0 - p_taken)

    return TraceStatistics(
        name=trace.name,
        n_branches=n_branches,
        n_static=len(count_by_pc),
        total_instructions=total_instructions,
        taken_rate=taken_total / n_branches,
        transition_rate=transitions / n_branches,
        mean_dynamic_bias=bias_weighted / n_branches,
        branches_per_kilo_instruction=1000.0 * n_branches / max(total_instructions, 1),
    )
