"""McFarling's gshare predictor [10].

A table of 2-bit counters indexed by the xor of the branch PC and the
global history.  Included because the JRS confidence estimator [4] is "a
gshare-like indexed table of saturating counters": the index pipeline here
is shared with :class:`repro.confidence.jrs.JrsEstimator`, and gshare
serves as a 1990s-generation baseline predictor for the comparison
benches.
"""

from __future__ import annotations

from repro.common.bitops import fold_bits, mask
from repro.common.history import GlobalHistory
from repro.predictors.base import BranchPredictor

__all__ = ["GsharePredictor", "gshare_index"]


def gshare_index(pc: int, history_window: int, history_length: int, log_entries: int) -> int:
    """The gshare hash: PC xor folded global history, masked to the table.

    Exposed as a free function because the JRS confidence estimator reuses
    exactly this index computation.
    """
    folded = fold_bits(history_window & mask(history_length), log_entries)
    return ((pc >> 2) ^ folded) & mask(log_entries)


class GsharePredictor(BranchPredictor):
    """Global-history xor-indexed 2-bit counter table.

    Args:
        log_entries: log2 table size.
        history_length: global history bits mixed into the index.
    """

    name = "gshare"

    def __init__(self, log_entries: int = 14, history_length: int = 14) -> None:
        super().__init__()
        if log_entries <= 0:
            raise ValueError(f"log_entries must be positive, got {log_entries}")
        if history_length <= 0:
            raise ValueError(f"history_length must be positive, got {history_length}")
        self.log_entries = log_entries
        self.history_length = history_length
        self._history = GlobalHistory(capacity=history_length)
        self._table = [2] * (1 << log_entries)
        self._last_index = 0
        self._last_counter = 0

    def _predict(self, pc: int) -> bool:
        index = gshare_index(
            pc, self._history.window(self.history_length), self.history_length, self.log_entries
        )
        counter = self._table[index]
        self._last_index = index
        self._last_counter = counter
        return counter >= 2

    def _train(self, pc: int, taken: bool) -> None:
        index = self._last_index
        counter = self._table[index]
        if taken:
            if counter < 3:
                self._table[index] = counter + 1
        elif counter > 0:
            self._table[index] = counter - 1
        self._history.push(taken)

    @property
    def last_counter(self) -> int:
        return self._last_counter

    @property
    def history(self) -> GlobalHistory:
        return self._history

    def storage_bits(self) -> int:
        return (1 << self.log_entries) * 2

    def reset(self) -> None:
        super().reset()
        self._history.reset()
        self._table = [2] * (1 << self.log_entries)
        self._last_index = 0
        self._last_counter = 0
