"""Smith's bimodal predictor [14].

A PC-indexed table of 2-bit saturating counters: values 0-1 predict not
taken, 2-3 predict taken.  Smith's original observation — that a weak
counter (1 or 2) signals an unreliable prediction — is the earliest
storage-free confidence estimator and is exactly the signal the paper
reuses for the ``low-conf-bim`` class.

This class doubles as a standalone baseline and as the template for the
TAGE base component (:class:`repro.predictors.tage.components.BimodalTable`).
"""

from __future__ import annotations

from repro.common.bitops import mask
from repro.predictors.base import BranchPredictor

__all__ = ["BimodalPredictor"]


class BimodalPredictor(BranchPredictor):
    """PC-indexed table of 2-bit counters.

    Args:
        log_entries: log2 of the table size.
        counter_bits: counter width (2 in every published configuration).

    >>> p = BimodalPredictor(log_entries=10)
    >>> for _ in range(4):
    ...     _ = p.predict_and_train(0x400, True)
    >>> p.predict(0x400)
    True
    """

    name = "bimodal"

    def __init__(self, log_entries: int = 12, counter_bits: int = 2) -> None:
        super().__init__()
        if log_entries <= 0:
            raise ValueError(f"log_entries must be positive, got {log_entries}")
        if counter_bits <= 0:
            raise ValueError(f"counter_bits must be positive, got {counter_bits}")
        self.log_entries = log_entries
        self.counter_bits = counter_bits
        self._mask = mask(log_entries)
        self._max = (1 << counter_bits) - 1
        self._weak_not_taken = (1 << (counter_bits - 1)) - 1
        self._table = [self._weak_not_taken + 1] * (1 << log_entries)
        self._last_index = 0
        self._last_counter = 0

    def _index(self, pc: int) -> int:
        return (pc >> 2) & self._mask

    def _predict(self, pc: int) -> bool:
        index = self._index(pc)
        counter = self._table[index]
        self._last_index = index
        self._last_counter = counter
        return counter > self._weak_not_taken

    def _train(self, pc: int, taken: bool) -> None:
        index = self._last_index
        counter = self._table[index]
        if taken:
            if counter < self._max:
                self._table[index] = counter + 1
        elif counter > 0:
            self._table[index] = counter - 1

    @property
    def last_counter(self) -> int:
        """Counter value read by the most recent ``predict`` call."""
        return self._last_counter

    def counter_is_weak(self, counter: int | None = None) -> bool:
        """Smith's confidence signal: is the counter in a weak state?"""
        value = self._last_counter if counter is None else counter
        return value in (self._weak_not_taken, self._weak_not_taken + 1)

    def storage_bits(self) -> int:
        return (1 << self.log_entries) * self.counter_bits

    def reset(self) -> None:
        super().reset()
        self._table = [self._weak_not_taken + 1] * (1 << self.log_entries)
        self._last_index = 0
        self._last_counter = 0
