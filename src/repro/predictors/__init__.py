"""Branch predictors.

* :class:`repro.predictors.base.BranchPredictor` — the common
  predict/train interface used by the simulation engine.
* :class:`repro.predictors.bimodal.BimodalPredictor` — Smith's 2-bit
  counter predictor [14], both a baseline and the TAGE base component.
* :class:`repro.predictors.gshare.GsharePredictor` — McFarling's gshare
  [10], the index scheme behind the JRS confidence table.
* :class:`repro.predictors.perceptron.PerceptronPredictor` — Jiménez/Lin
  global perceptron, carrier of the perceptron self-confidence baseline.
* :class:`repro.predictors.ogehl.OgehlPredictor` — Seznec's O-GEHL [11],
  carrier of the O-GEHL self-confidence baseline cited in §2.2.
* :mod:`repro.predictors.tage` — the TAGE predictor family (the paper's
  subject), with the paper's three storage presets and both the standard
  and the probabilistic-saturation counter automata.
"""

from repro.predictors.base import BranchPredictor, PredictorError
from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.gshare import GsharePredictor
from repro.predictors.local import LocalHistoryPredictor
from repro.predictors.ogehl import OgehlPredictor
from repro.predictors.perceptron import PerceptronPredictor
from repro.predictors.tage import TageConfig, TagePrediction, TagePredictor
from repro.predictors.tage.loop import LoopPredictor, LtagePredictor
from repro.predictors.tournament import TournamentPredictor

__all__ = [
    "BranchPredictor",
    "BimodalPredictor",
    "GsharePredictor",
    "LocalHistoryPredictor",
    "LoopPredictor",
    "LtagePredictor",
    "TournamentPredictor",
    "OgehlPredictor",
    "PerceptronPredictor",
    "PredictorError",
    "TageConfig",
    "TagePrediction",
    "TagePredictor",
]
