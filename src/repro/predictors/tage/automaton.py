"""Prediction counter update automata (the paper's §6 mechanism).

The tagged TAGE components use an n-bit (3-bit by default) *signed*
saturating counter whose sign provides the prediction.  The paper's key
enabling trick is that making the *last* step toward saturation
probabilistic turns a saturated counter into a statistical witness of
many consecutive correct predictions — which is what lets the ``Stag``
class reach sub-1% misprediction rates with no extra storage.  This
module isolates the two update rules the paper studies:

* :class:`StandardAutomaton` — plain signed saturating increment toward
  taken / decrement toward not taken.
* :class:`ProbabilisticSaturationAutomaton` — the paper's §6
  modification: *on a correct prediction, when the counter is one step
  away from saturation (2 or −3 for 3 bits), the transition into the
  saturated state is taken only with probability 1/2^k* (k = 7, i.e.
  1/128, in the illustrated experiments).  A saturated counter therefore
  implies that no recent misprediction came from this entry, which is
  what purifies the ``Stag`` confidence class (misprediction rate drops
  from ~the application average to 1–5 MKP) at a negligible accuracy
  cost (< 0.02 misp/KI in the paper).

The probability is a mutable attribute (``sat_prob_log2``) because §6.2's
adaptive scheme moves it between 1/1024 and 1 at run time.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.common.rng import Lfsr32

__all__ = [
    "CounterAutomaton",
    "StandardAutomaton",
    "ProbabilisticSaturationAutomaton",
]


class CounterAutomaton(ABC):
    """Update rule for a signed saturating prediction counter."""

    def __init__(self, ctr_bits: int) -> None:
        if ctr_bits < 2:
            raise ValueError(f"ctr_bits must be >= 2, got {ctr_bits}")
        self.ctr_bits = ctr_bits
        self.ctr_max = (1 << (ctr_bits - 1)) - 1
        self.ctr_min = -(1 << (ctr_bits - 1))

    @abstractmethod
    def update(self, ctr: int, taken: bool) -> int:
        """Return the counter value after observing outcome ``taken``."""

    def reset(self) -> None:
        """Restore any internal state (default: stateless)."""


class StandardAutomaton(CounterAutomaton):
    """Plain signed saturating counter.

    >>> a = StandardAutomaton(ctr_bits=3)
    >>> a.update(2, True), a.update(3, True), a.update(-4, False)
    (3, 3, -4)
    """

    def update(self, ctr: int, taken: bool) -> int:
        if taken:
            return ctr + 1 if ctr < self.ctr_max else ctr
        return ctr - 1 if ctr > self.ctr_min else ctr


class ProbabilisticSaturationAutomaton(CounterAutomaton):
    """§6 modified automaton: randomly gated entry into saturation.

    The transition ``ctr_max - 1 -> ctr_max`` (on taken) and
    ``ctr_min + 1 -> ctr_min`` (on not taken) is performed only when the
    LFSR grants a ``1/2**sat_prob_log2`` event.  Both gated transitions
    occur on a *correct* prediction (the counter already agrees with the
    outcome), matching the paper's wording.

    Args:
        ctr_bits: counter width.
        sat_prob_log2: k in probability 1/2^k (7 → 1/128).
        seed: LFSR seed; experiments are deterministic given the seed.
    """

    def __init__(self, ctr_bits: int, sat_prob_log2: int = 7, seed: int = 0x0BADF00D) -> None:
        super().__init__(ctr_bits)
        if not 0 <= sat_prob_log2 <= 20:
            raise ValueError(f"sat_prob_log2 must be in [0, 20], got {sat_prob_log2}")
        self.sat_prob_log2 = sat_prob_log2
        self._seed = seed
        self._lfsr = Lfsr32(seed)

    @property
    def saturation_probability(self) -> float:
        return 1.0 / (1 << self.sat_prob_log2)

    def update(self, ctr: int, taken: bool) -> int:
        if taken:
            if ctr >= self.ctr_max:
                return ctr
            if ctr == self.ctr_max - 1 and not self._lfsr.one_in_pow2(self.sat_prob_log2):
                return ctr
            return ctr + 1
        if ctr <= self.ctr_min:
            return ctr
        if ctr == self.ctr_min + 1 and not self._lfsr.one_in_pow2(self.sat_prob_log2):
            return ctr
        return ctr - 1

    def reset(self) -> None:
        self._lfsr = Lfsr32(self._seed)
