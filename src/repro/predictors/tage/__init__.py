"""The TAGE predictor family (Seznec & Michaud [13], Seznec [12]).

Modules:

* :mod:`repro.predictors.tage.config` — :class:`TageConfig` with the
  paper's three storage presets (Table 1: 16K / 64K / 256K bits).
* :mod:`repro.predictors.tage.automaton` — the 3-bit prediction counter
  update rules: the standard saturating automaton and the paper's §6
  probabilistic-saturation modification.
* :mod:`repro.predictors.tage.components` — the base bimodal table and
  the partially tagged components with their folded-history index/tag
  pipelines.
* :mod:`repro.predictors.tage.predictor` — :class:`TagePredictor`, the
  full prediction/update/allocation state machine, and
  :class:`TagePrediction`, the per-prediction observation record that the
  storage-free confidence estimator reads.
"""

from repro.predictors.tage.automaton import (
    CounterAutomaton,
    ProbabilisticSaturationAutomaton,
    StandardAutomaton,
)
from repro.predictors.tage.components import BimodalTable, TaggedComponent
from repro.predictors.tage.config import TageConfig
from repro.predictors.tage.loop import LoopPredictor, LtagePredictor
from repro.predictors.tage.predictor import TagePrediction, TagePredictor

__all__ = [
    "BimodalTable",
    "CounterAutomaton",
    "LoopPredictor",
    "LtagePredictor",
    "ProbabilisticSaturationAutomaton",
    "StandardAutomaton",
    "TageConfig",
    "TagePrediction",
    "TagePredictor",
    "TaggedComponent",
]
