"""TAGE table components (paper §3: the base predictor and the
partially tagged, geometric-history components).

These are the hardware structures the confidence paper *observes*: the
storage-free estimator classifies each prediction by which of these
components provided it (bimodal vs tagged) and by the state of the
provider's counters — no component stores any confidence information.

:class:`BimodalTable`
    The base predictor T0: a PC-indexed table of 2-bit counters with
    unshared hysteresis (per the paper's "realistically implementable"
    constraint list).
:class:`TaggedComponent`
    One tagged component Ti: per-entry signed prediction counter ``ctr``,
    partial ``tag`` and useful counter ``u``, plus the three folded
    histories (one for the index, two for the tag hash) that compress the
    component's global-history window in O(1) per branch.

Entries are stored as parallel ``list[int]`` columns rather than entry
objects: the TAGE inner loop touches every component on every branch, and
column storage keeps that loop allocation-free.
"""

from __future__ import annotations

from repro.common.bitops import fold_bits, mask
from repro.common.history import FoldedHistory

__all__ = ["BimodalTable", "TaggedComponent"]


class BimodalTable:
    """Base bimodal component: 2-bit counters, taken when >= 2."""

    __slots__ = ("log_entries", "_mask", "counters")

    WEAK_NOT_TAKEN = 1
    WEAK_TAKEN = 2

    def __init__(self, log_entries: int) -> None:
        if log_entries <= 0:
            raise ValueError(f"log_entries must be positive, got {log_entries}")
        self.log_entries = log_entries
        self._mask = mask(log_entries)
        self.counters = [self.WEAK_TAKEN] * (1 << log_entries)

    def index(self, pc: int) -> int:
        return (pc >> 2) & self._mask

    def read(self, pc: int) -> int:
        """Counter value for ``pc`` (0..3)."""
        return self.counters[self.index(pc)]

    @staticmethod
    def taken(counter: int) -> bool:
        return counter >= 2

    @staticmethod
    def is_weak(counter: int) -> bool:
        """Smith's weak-counter confidence signal (states 1 and 2)."""
        return counter in (BimodalTable.WEAK_NOT_TAKEN, BimodalTable.WEAK_TAKEN)

    def update(self, pc: int, taken: bool) -> None:
        index = self.index(pc)
        counter = self.counters[index]
        if taken:
            if counter < 3:
                self.counters[index] = counter + 1
        elif counter > 0:
            self.counters[index] = counter - 1

    def storage_bits(self) -> int:
        return (1 << self.log_entries) * 2

    def reset(self) -> None:
        self.counters = [self.WEAK_TAKEN] * (1 << self.log_entries)


class TaggedComponent:
    """One (partially) tagged TAGE component.

    Args:
        table_number: position i in T1..TM (used to decorrelate the PC
            hash between components).
        log_entries: log2 entries.
        tag_bits: partial tag width.
        ctr_bits: signed prediction counter width.
        u_bits: useful counter width.
        history_length: global history bits folded into index and tag.
        path_bits: path history bits available for mixing.
    """

    __slots__ = (
        "table_number",
        "log_entries",
        "tag_bits",
        "ctr_bits",
        "u_bits",
        "history_length",
        "path_bits",
        "ctr",
        "tag",
        "u",
        "_index_mask",
        "_tag_mask",
        "_folded_index",
        "_folded_tag_a",
        "_folded_tag_b",
        "_path_mask",
    )

    def __init__(
        self,
        table_number: int,
        log_entries: int,
        tag_bits: int,
        ctr_bits: int,
        u_bits: int,
        history_length: int,
        path_bits: int = 16,
    ) -> None:
        if table_number < 1:
            raise ValueError(f"table_number must be >= 1, got {table_number}")
        if tag_bits < 2:
            raise ValueError(f"tag_bits must be >= 2, got {tag_bits}")
        self.table_number = table_number
        self.log_entries = log_entries
        self.tag_bits = tag_bits
        self.ctr_bits = ctr_bits
        self.u_bits = u_bits
        self.history_length = history_length
        self.path_bits = min(path_bits, history_length)
        size = 1 << log_entries
        self.ctr = [0] * size
        self.tag = [0] * size
        self.u = [0] * size
        self._index_mask = mask(log_entries)
        self._tag_mask = mask(tag_bits)
        self._folded_index = FoldedHistory(history_length, log_entries)
        # Two independent tag foldings (widths differing by one) so the tag
        # is not a simple rotation of the index — the classic TAGE trick.
        self._folded_tag_a = FoldedHistory(history_length, tag_bits)
        self._folded_tag_b = FoldedHistory(history_length, max(tag_bits - 1, 1))
        self._path_mask = mask(self.path_bits)

    # -- hashing ---------------------------------------------------------

    def compute_index(self, pc: int, path_history: int) -> int:
        """Table index: PC, folded history and folded path, xor-mixed."""
        pc_part = pc >> 2
        path_part = fold_bits(path_history & self._path_mask, self.log_entries)
        value = (
            pc_part
            ^ (pc_part >> (self.table_number + 1))
            ^ self._folded_index.value
            ^ path_part
        )
        return value & self._index_mask

    def compute_tag(self, pc: int) -> int:
        """Partial tag: PC xor two decorrelated history foldings."""
        value = (pc >> 2) ^ self._folded_tag_a.value ^ (self._folded_tag_b.value << 1)
        return value & self._tag_mask

    def update_folded_histories(self, new_bit: int, outgoing_bit: int) -> None:
        """Advance the three folded histories by one branch."""
        self._folded_index.update(new_bit, outgoing_bit)
        self._folded_tag_a.update(new_bit, outgoing_bit)
        self._folded_tag_b.update(new_bit, outgoing_bit)

    # -- entry management --------------------------------------------------

    def allocate(self, index: int, tag: int, taken: bool) -> None:
        """Initialize an entry: weak-correct counter, strong-not-useful u."""
        self.ctr[index] = 0 if taken else -1
        self.tag[index] = tag
        self.u[index] = 0

    def age_useful_counters(self) -> None:
        """Graceful reset: one-bit right shift of every u counter (§3.2)."""
        u = self.u
        for index in range(len(u)):
            u[index] >>= 1

    def storage_bits(self) -> int:
        return (1 << self.log_entries) * (self.ctr_bits + self.tag_bits + self.u_bits)

    def reset(self) -> None:
        size = 1 << self.log_entries
        self.ctr = [0] * size
        self.tag = [0] * size
        self.u = [0] * size
        self._folded_index.reset()
        self._folded_tag_a.reset()
        self._folded_tag_b.reset()
