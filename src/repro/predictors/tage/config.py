"""TAGE configuration and the paper's three storage presets.

Table 1 of the paper:

============== ======== ======== =========
storage budget 16 Kbits 64 Kbits 256 Kbits
tables         1 + 4    1 + 7    1 + 8
min history    3        5        5
max history    80       130      300
============== ======== ======== =========

The presets below realize those parameters with the paper's
"realistically implementable" constraints: every tagged table has the
same number of entries, bimodal hysteresis is not shared, and the total
storage (:meth:`TageConfig.storage_bits`) fits the stated budget:

* ``small``  : 2^11-entry bimodal + 4 × 2^8-entry tagged, 7-bit tags
  → 16 384 bits (exactly 16 Kbits).
* ``medium`` : 2^12-entry bimodal + 7 × 2^9-entry tagged, 11-bit tags
  → 65 536 bits (exactly 64 Kbits).
* ``large``  : 2^13-entry bimodal + 8 × 2^11-entry tagged, 10-bit tags
  → 262 144 bits (exactly 256 Kbits).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.predictors.ogehl import geometric_history_lengths

__all__ = ["TageConfig", "AUTOMATON_STANDARD", "AUTOMATON_PROBABILISTIC"]

AUTOMATON_STANDARD = "standard"
AUTOMATON_PROBABILISTIC = "probabilistic"

_ALLOCATION_POLICIES = ("randomized", "first-free")


@dataclass(frozen=True)
class TageConfig:
    """Complete parameterization of a :class:`TagePredictor`.

    Attributes:
        name: configuration label (used in reports).
        n_tagged: number of tagged components (M).
        log_bimodal: log2 entries of the base bimodal table.
        log_tagged: log2 entries of each tagged component.
        tag_bits: partial tag width.
        ctr_bits: tagged prediction counter width (3 in the paper; 4 for
            the §6 widening ablation).
        u_bits: useful counter width (2 per the paper's tradeoff).
        min_history / max_history: geometric history series endpoints.
        path_history_bits: length of the path history register mixed into
            tagged indices.
        use_alt_on_na_bits: width of the USE_ALT_ON_NA counter (4).
        use_alt_on_na_enabled: disable to always trust the provider sign
            (the §3.1 ablation: selective alternate-prediction use is a
            small but real accuracy win).
        u_reset_period: branches between graceful u-counter resets
            (one-bit right shift).  The reference simulators use 256K;
            the default here is scaled to this repository's shorter
            traces.
        automaton: ``"standard"`` or ``"probabilistic"`` (§6).
        sat_prob_log2: log2 of the saturation probability denominator for
            the probabilistic automaton (7 → 1/128, the paper's default).
        allocation_policy: ``"randomized"`` (reference-simulator style
            randomized start) or ``"first-free"``.
        update_alt_when_u_zero: also train the alternate entry when the
            provider's u counter is 0 (an L-TAGE refinement; off by
            default to match the 2006 TAGE automaton the paper uses).
        lfsr_seed / alloc_seed: seeds of the deterministic random sources.
    """

    name: str
    n_tagged: int
    log_bimodal: int
    log_tagged: int
    tag_bits: int
    min_history: int
    max_history: int
    ctr_bits: int = 3
    u_bits: int = 2
    path_history_bits: int = 16
    use_alt_on_na_bits: int = 4
    use_alt_on_na_enabled: bool = True
    u_reset_period: int = 32_768
    automaton: str = AUTOMATON_STANDARD
    sat_prob_log2: int = 7
    allocation_policy: str = "randomized"
    update_alt_when_u_zero: bool = False
    lfsr_seed: int = 0x0BADF00D
    alloc_seed: int = 0x5EEDBA5E
    history_lengths: tuple[int, ...] = field(init=False)

    def __post_init__(self) -> None:
        if self.n_tagged < 1:
            raise ValueError(f"need at least one tagged component, got {self.n_tagged}")
        for label, value in (
            ("log_bimodal", self.log_bimodal),
            ("log_tagged", self.log_tagged),
            ("tag_bits", self.tag_bits),
            ("path_history_bits", self.path_history_bits),
        ):
            if value <= 0:
                raise ValueError(f"{label} must be positive, got {value}")
        if self.ctr_bits < 2:
            raise ValueError(f"ctr_bits must be >= 2, got {self.ctr_bits}")
        if self.u_bits < 1:
            raise ValueError(f"u_bits must be >= 1, got {self.u_bits}")
        if not 0 < self.min_history <= self.max_history:
            raise ValueError(
                f"need 0 < min_history <= max_history, got "
                f"{self.min_history}, {self.max_history}"
            )
        if self.automaton not in (AUTOMATON_STANDARD, AUTOMATON_PROBABILISTIC):
            raise ValueError(f"unknown automaton {self.automaton!r}")
        if not 0 <= self.sat_prob_log2 <= 20:
            raise ValueError(f"sat_prob_log2 must be in [0, 20], got {self.sat_prob_log2}")
        if self.allocation_policy not in _ALLOCATION_POLICIES:
            raise ValueError(
                f"allocation_policy must be one of {_ALLOCATION_POLICIES}, "
                f"got {self.allocation_policy!r}"
            )
        if self.u_reset_period <= 0:
            raise ValueError(f"u_reset_period must be positive, got {self.u_reset_period}")
        lengths = geometric_history_lengths(
            self.min_history, self.max_history, self.n_tagged
        )
        object.__setattr__(self, "history_lengths", tuple(lengths))

    # -- presets (paper Table 1) ----------------------------------------

    @classmethod
    def small(cls, **overrides) -> "TageConfig":
        """16 Kbits: 1 + 4 tables, histories 3..80."""
        config = cls(
            name="TAGE-16K",
            n_tagged=4,
            log_bimodal=11,
            log_tagged=8,
            tag_bits=7,
            min_history=3,
            max_history=80,
        )
        return replace(config, **overrides) if overrides else config

    @classmethod
    def medium(cls, **overrides) -> "TageConfig":
        """64 Kbits: 1 + 7 tables, histories 5..130."""
        config = cls(
            name="TAGE-64K",
            n_tagged=7,
            log_bimodal=12,
            log_tagged=9,
            tag_bits=11,
            min_history=5,
            max_history=130,
        )
        return replace(config, **overrides) if overrides else config

    @classmethod
    def large(cls, **overrides) -> "TageConfig":
        """256 Kbits: 1 + 8 tables, histories 5..300."""
        config = cls(
            name="TAGE-256K",
            n_tagged=8,
            log_bimodal=13,
            log_tagged=11,
            tag_bits=10,
            min_history=5,
            max_history=300,
        )
        return replace(config, **overrides) if overrides else config

    @classmethod
    def preset(cls, size: str, **overrides) -> "TageConfig":
        """Look up a preset by name: ``"16K"``, ``"64K"`` or ``"256K"``."""
        builders = {"16K": cls.small, "64K": cls.medium, "256K": cls.large}
        try:
            return builders[size](**overrides)
        except KeyError:
            raise KeyError(f"unknown preset {size!r}; choose from {sorted(builders)}") from None

    # -- derived quantities ----------------------------------------------

    def with_probabilistic_automaton(self, sat_prob_log2: int = 7) -> "TageConfig":
        """This configuration with the §6 modified counter automaton."""
        return replace(
            self,
            automaton=AUTOMATON_PROBABILISTIC,
            sat_prob_log2=sat_prob_log2,
            name=f"{self.name}-prob{1 << sat_prob_log2}",
        )

    def tagged_entry_bits(self) -> int:
        """Bits per tagged entry: prediction counter + tag + useful."""
        return self.ctr_bits + self.tag_bits + self.u_bits

    def component_geometries(self) -> tuple[tuple[int, int, int, int, int], ...]:
        """Per-tagged-component hash geometry, in T1..TM order.

        Each tuple is ``(table_number, log_entries, tag_bits,
        history_length, path_bits)`` — exactly the parameters the
        component's index and tag hashes depend on (``path_bits`` is the
        effective per-component path window,
        ``min(path_history_bits, history_length)``, mirroring
        :class:`~repro.predictors.tage.components.TaggedComponent`).
        The fast backend keys its precomputed index/tag planes on this
        tuple: two configurations with equal geometries (e.g. the same
        preset under different counter automata or seeds) share planes.
        """
        return tuple(
            (
                i + 1,
                self.log_tagged,
                self.tag_bits,
                length,
                min(self.path_history_bits, length),
            )
            for i, length in enumerate(self.history_lengths)
        )

    def storage_bits(self) -> int:
        """Total table storage (the paper's budget accounting)."""
        bimodal = (1 << self.log_bimodal) * 2
        tagged = self.n_tagged * (1 << self.log_tagged) * self.tagged_entry_bits()
        return bimodal + tagged
