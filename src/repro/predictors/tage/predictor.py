"""The TAGE predictor (Seznec & Michaud [13]).

Prediction (§3.1 of the confidence paper):

1. all components are read in parallel; the *provider* is the hitting
   tagged component with the longest history (or the bimodal base when no
   tag matches);
2. the *alternate prediction* ``altpred`` is what the predictor would have
   produced on a provider miss (next hitting component, else bimodal);
3. if the provider's counter is weak and the ``USE_ALT_ON_NA`` monitor is
   non-negative, ``altpred`` is used, otherwise the provider counter sign.

Update (§3.2/§3.3):

* the provider's prediction counter is updated (through the configured
  automaton — standard, or §6 probabilistic-saturation);
* the provider's useful counter ``u`` is updated when ``altpred`` differs
  from the provider's prediction, and all ``u`` counters age by a one-bit
  shift every ``u_reset_period`` branches;
* on a misprediction (unless the provider was a just-allocated weak entry
  that was individually correct), at most one entry is allocated on a
  component with a longer history, chosen among entries with ``u == 0``;
  when none is free the candidates' ``u`` are decremented instead.

Every ``predict`` produces a :class:`TagePrediction` observation record —
the *outputs of the predictor tables* whose simple observation is the
paper's whole confidence mechanism.
"""

from __future__ import annotations

from repro.common.bitops import mask
from repro.common.counters import saturating_update
from repro.common.history import GlobalHistory, PathHistory
from repro.common.rng import XorShift32
from repro.predictors.base import BranchPredictor, PredictorError
from repro.predictors.tage.automaton import (
    CounterAutomaton,
    ProbabilisticSaturationAutomaton,
    StandardAutomaton,
)
from repro.predictors.tage.components import BimodalTable, TaggedComponent
from repro.predictors.tage.config import AUTOMATON_PROBABILISTIC, TageConfig

__all__ = ["TagePrediction", "TagePredictor"]


class TagePrediction:
    """Observation record of one TAGE prediction.

    This is what the paper means by "the outputs of the predictor
    tables": everything the storage-free confidence estimator reads.

    Attributes:
        pc: branch address.
        prediction: final predicted direction.
        provider: providing component (0 = bimodal base, 1..M = tagged).
        provider_ctr: provider's prediction counter (signed for tagged
            components, 0..3 unsigned for the bimodal base).
        provider_pred: the provider counter's own direction (before the
            USE_ALT_ON_NA substitution).
        provider_index: provider table index (for update).
        weak_provider: tagged provider in a weak counter state.
        altpred: the alternate prediction.
        alt_provider: component that produced ``altpred``.
        alt_index: its table index (for the optional alternate update).
        used_alt: final prediction came from ``altpred``.
        bimodal_ctr: base predictor counter read this cycle (0..3).
        indices: per-tagged-table indices computed this cycle (1-based;
            ``indices[0]`` is unused).
        tags: per-tagged-table tags computed this cycle (same layout).
    """

    __slots__ = (
        "pc",
        "prediction",
        "provider",
        "provider_ctr",
        "provider_pred",
        "provider_index",
        "weak_provider",
        "altpred",
        "alt_provider",
        "alt_index",
        "used_alt",
        "bimodal_ctr",
        "indices",
        "tags",
    )

    def __init__(self) -> None:
        self.pc = 0
        self.prediction = False
        self.provider = 0
        self.provider_ctr = 0
        self.provider_pred = False
        self.provider_index = 0
        self.weak_provider = False
        self.altpred = False
        self.alt_provider = 0
        self.alt_index = 0
        self.used_alt = False
        self.bimodal_ctr = 0
        self.indices: list[int] = []
        self.tags: list[int] = []

    @property
    def provider_is_bimodal(self) -> bool:
        """True when the bimodal base component provided the prediction."""
        return self.provider == 0

    def __repr__(self) -> str:
        return (
            f"TagePrediction(pc={self.pc:#x}, pred={self.prediction}, "
            f"provider=T{self.provider}, ctr={self.provider_ctr}, "
            f"alt=T{self.alt_provider}, used_alt={self.used_alt})"
        )


class TagePredictor(BranchPredictor):
    """TAGE: a bimodal base backed by M partially tagged components.

    >>> predictor = TagePredictor(TageConfig.small())
    >>> predictor.storage_bits()
    16384
    """

    name = "tage"

    def __init__(self, config: TageConfig) -> None:
        super().__init__()
        self.config = config
        self.bimodal = BimodalTable(config.log_bimodal)
        self.components: list[TaggedComponent] = [
            TaggedComponent(
                table_number=i + 1,
                log_entries=config.log_tagged,
                tag_bits=config.tag_bits,
                ctr_bits=config.ctr_bits,
                u_bits=config.u_bits,
                history_length=length,
                path_bits=config.path_history_bits,
            )
            for i, length in enumerate(config.history_lengths)
        ]
        self.automaton = self._build_automaton(config)
        self._ctr_max = self.automaton.ctr_max
        self._ctr_min = self.automaton.ctr_min
        self._u_max = (1 << config.u_bits) - 1
        self._use_alt_on_na = 0  # 4-bit signed counter, range [-8, 7]
        self._use_alt_max = (1 << (config.use_alt_on_na_bits - 1)) - 1
        self._use_alt_min = -(1 << (config.use_alt_on_na_bits - 1))
        # history_lengths can exceed max_history by a step or two when the
        # duplicate-bumping in geometric_history_lengths fires (very short
        # series); size the register to the actual longest window.
        self._history = GlobalHistory(
            capacity=max((config.max_history, *config.history_lengths))
        )
        self._path = PathHistory(length=config.path_history_bits)
        self._alloc_rng = XorShift32(config.alloc_seed)
        self._branch_count = 0
        self._last = TagePrediction()

    @staticmethod
    def _build_automaton(config: TageConfig) -> CounterAutomaton:
        if config.automaton == AUTOMATON_PROBABILISTIC:
            return ProbabilisticSaturationAutomaton(
                ctr_bits=config.ctr_bits,
                sat_prob_log2=config.sat_prob_log2,
                seed=config.lfsr_seed,
            )
        return StandardAutomaton(ctr_bits=config.ctr_bits)

    # ------------------------------------------------------------------
    # prediction
    # ------------------------------------------------------------------

    def _predict(self, pc: int) -> bool:
        components = self.components
        n_tagged = len(components)
        path_value = self._path.value

        indices = [0] * (n_tagged + 1)
        tags = [0] * (n_tagged + 1)
        hit_mask = 0
        for i in range(1, n_tagged + 1):
            component = components[i - 1]
            index = component.compute_index(pc, path_value)
            tag = component.compute_tag(pc)
            indices[i] = index
            tags[i] = tag
            if component.tag[index] == tag:
                hit_mask |= 1 << i

        provider = 0
        alt_provider = 0
        if hit_mask:
            provider = hit_mask.bit_length() - 1
            lower = hit_mask & mask(provider)
            if lower:
                alt_provider = lower.bit_length() - 1

        bimodal_ctr = self.bimodal.read(pc)
        bimodal_pred = bimodal_ctr >= 2

        last = self._last
        last.pc = pc
        last.indices = indices
        last.tags = tags
        last.bimodal_ctr = bimodal_ctr
        last.alt_provider = alt_provider
        last.alt_index = indices[alt_provider] if alt_provider else 0

        if provider == 0:
            last.provider = 0
            last.provider_index = self.bimodal.index(pc)
            last.provider_ctr = bimodal_ctr
            last.provider_pred = bimodal_pred
            last.weak_provider = False
            last.altpred = bimodal_pred
            last.used_alt = False
            last.prediction = bimodal_pred
            return bimodal_pred

        component = components[provider - 1]
        index = indices[provider]
        ctr = component.ctr[index]
        provider_pred = ctr >= 0
        weak = ctr in (0, -1)
        if alt_provider:
            alt_ctr = components[alt_provider - 1].ctr[last.alt_index]
            altpred = alt_ctr >= 0
        else:
            altpred = bimodal_pred

        if weak and self.config.use_alt_on_na_enabled and self._use_alt_on_na >= 0:
            prediction = altpred
            used_alt = True
        else:
            prediction = provider_pred
            used_alt = False

        last.provider = provider
        last.provider_index = index
        last.provider_ctr = ctr
        last.provider_pred = provider_pred
        last.weak_provider = weak
        last.altpred = altpred
        last.used_alt = used_alt
        last.prediction = prediction
        return prediction

    # ------------------------------------------------------------------
    # update
    # ------------------------------------------------------------------

    def _train(self, pc: int, taken: bool) -> None:
        last = self._last
        if last.pc != pc:
            raise PredictorError(
                f"train({pc:#x}) does not match cached prediction for {last.pc:#x}"
            )
        config = self.config
        components = self.components
        n_tagged = len(components)
        mispredicted = last.prediction != taken
        provider = last.provider

        # -- allocation decision (§3.3, with the reference-simulator
        #    refinement: a weak just-allocated provider that was
        #    individually correct only needs training, not a new entry).
        allocate = mispredicted and provider < n_tagged
        if provider > 0 and last.weak_provider:
            if last.provider_pred == taken:
                allocate = False
            # USE_ALT_ON_NA monitors whether the alternate prediction beats
            # weak ("newly allocated") provider entries.
            if last.provider_pred != last.altpred:
                self._update_use_alt(last.altpred == taken)

        if allocate:
            self._allocate(provider, last, taken)

        # -- provider prediction counter update (§3.2).
        if provider > 0:
            component = components[provider - 1]
            index = last.provider_index
            component.ctr[index] = self.automaton.update(component.ctr[index], taken)
            if config.update_alt_when_u_zero and component.u[index] == 0:
                self._train_alternate(last, taken)
            # -- useful counter update: only when altpred differs from the
            #    provider prediction (§3.2).
            if last.provider_pred != last.altpred:
                component.u[index] = saturating_update(
                    component.u[index], last.provider_pred == taken, config.u_bits
                )
        else:
            self.bimodal.update(pc, taken)

        # -- graceful periodic aging of the u counters.
        self._branch_count += 1
        if self._branch_count % config.u_reset_period == 0:
            for component in components:
                component.age_useful_counters()

        # -- speculative history update.
        new_bit = int(taken)
        history = self._history
        for component in components:
            outgoing = history.bit(component.history_length - 1)
            component.update_folded_histories(new_bit, outgoing)
        history.push(taken)
        self._path.push(pc)

    def _update_use_alt(self, alt_was_correct: bool) -> None:
        value = self._use_alt_on_na
        if alt_was_correct:
            if value < self._use_alt_max:
                self._use_alt_on_na = value + 1
        elif value > self._use_alt_min:
            self._use_alt_on_na = value - 1

    def _train_alternate(self, last: TagePrediction, taken: bool) -> None:
        """Optional L-TAGE refinement: also train the alternate entry."""
        if last.alt_provider > 0:
            component = self.components[last.alt_provider - 1]
            component.ctr[last.alt_index] = self.automaton.update(
                component.ctr[last.alt_index], taken
            )
        else:
            self.bimodal.update(last.pc, taken)

    def _allocate(self, provider: int, last: TagePrediction, taken: bool) -> None:
        """Allocate at most one entry on a longer-history component."""
        n_tagged = len(self.components)
        start = provider + 1
        if self.config.allocation_policy == "randomized":
            # Geometric randomized start (reference-simulator style): skip
            # forward with probability 1/2 per step so allocations spread
            # over the longer-history tables instead of hammering Ti+1.
            while start < n_tagged and (self._alloc_rng.next_u32() & 1):
                start += 1
        for table in range(start, n_tagged + 1):
            index = last.indices[table]
            component = self.components[table - 1]
            if component.u[index] == 0:
                component.allocate(index, last.tags[table], taken)
                return
        # No free entry: decay the candidates so a later miss can allocate.
        for table in range(start, n_tagged + 1):
            index = last.indices[table]
            component = self.components[table - 1]
            if component.u[index] > 0:
                component.u[index] -= 1

    # ------------------------------------------------------------------
    # introspection & control
    # ------------------------------------------------------------------

    @property
    def last_prediction(self) -> TagePrediction:
        """Observation record of the most recent ``predict`` call."""
        return self._last

    @property
    def use_alt_on_na(self) -> int:
        """Current value of the USE_ALT_ON_NA monitor counter."""
        return self._use_alt_on_na

    @property
    def n_tagged(self) -> int:
        return len(self.components)

    @property
    def saturation_probability_log2(self) -> int:
        """k such that the saturation probability is 1/2^k (§6/§6.2)."""
        automaton = self.automaton
        if not isinstance(automaton, ProbabilisticSaturationAutomaton):
            raise PredictorError(
                "saturation probability is only defined for the probabilistic automaton"
            )
        return automaton.sat_prob_log2

    @saturation_probability_log2.setter
    def saturation_probability_log2(self, value: int) -> None:
        automaton = self.automaton
        if not isinstance(automaton, ProbabilisticSaturationAutomaton):
            raise PredictorError(
                "saturation probability is only defined for the probabilistic automaton"
            )
        if not 0 <= value <= 20:
            raise ValueError(f"sat_prob_log2 must be in [0, 20], got {value}")
        automaton.sat_prob_log2 = value

    def storage_bits(self) -> int:
        total = self.bimodal.storage_bits()
        for component in self.components:
            total += component.storage_bits()
        return total

    def reset(self) -> None:
        super().reset()
        self.bimodal.reset()
        for component in self.components:
            component.reset()
        self.automaton.reset()
        self._use_alt_on_na = 0
        self._history.reset()
        self._path.reset()
        self._alloc_rng = XorShift32(self.config.alloc_seed)
        self._branch_count = 0
        self._last = TagePrediction()
