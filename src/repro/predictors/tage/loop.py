"""Loop predictor and the L-TAGE combination (Seznec [12]).

The paper's reference predictor for CBP-2 was L-TAGE: a TAGE predictor
backed by a small side *loop predictor* that identifies branches with a
constant iteration count and predicts their exit exactly — including
loops far longer than the global history window.

The loop predictor is a small associative table; an entry tracks:

* a partial ``tag`` of the branch PC;
* ``past_iter`` — the trip count observed on the last completed
  execution of the loop;
* ``current_iter`` — iterations seen in the ongoing execution;
* ``confidence`` — consecutive times ``past_iter`` was confirmed;
* ``age`` — replacement counter.

The loop prediction *overrides* TAGE when the entry is confident
(``confidence`` saturated).  For the confidence study the relevant
property is that a confident loop prediction is near-certain — the
:class:`repro.confidence.estimator.TageConfidenceEstimator` treats
loop-provided predictions as an extra high-confidence source when used
with :class:`LtagePredictor` (the observation record marks them).
"""

from __future__ import annotations

from repro.common.bitops import mask
from repro.predictors.base import BranchPredictor
from repro.predictors.tage.config import TageConfig
from repro.predictors.tage.predictor import TagePredictor

__all__ = ["LoopPredictor", "LtagePredictor"]


class _LoopEntry:
    """One loop predictor entry."""

    __slots__ = ("tag", "past_iter", "current_iter", "confidence", "age", "direction")

    def __init__(self) -> None:
        self.tag = 0
        self.past_iter = 0
        self.current_iter = 0
        self.confidence = 0
        self.age = 0
        self.direction = True  # the direction taken *inside* the loop

    def reset(self) -> None:
        self.tag = 0
        self.past_iter = 0
        self.current_iter = 0
        self.confidence = 0
        self.age = 0
        self.direction = True


class LoopPredictor:
    """Associative loop-termination predictor.

    Args:
        log_entries: log2 of the entry count.
        tag_bits: partial tag width.
        confidence_threshold: confirmations needed before the prediction
            is trusted (L-TAGE uses a small saturating counter).
        max_iter_bits: iteration counter width; loops longer than
            ``2**max_iter_bits - 1`` cannot be captured.
    """

    def __init__(
        self,
        log_entries: int = 6,
        tag_bits: int = 10,
        confidence_threshold: int = 3,
        max_iter_bits: int = 12,
    ) -> None:
        if log_entries <= 0:
            raise ValueError(f"log_entries must be positive, got {log_entries}")
        if tag_bits <= 0:
            raise ValueError(f"tag_bits must be positive, got {tag_bits}")
        if confidence_threshold <= 0:
            raise ValueError(
                f"confidence_threshold must be positive, got {confidence_threshold}"
            )
        if max_iter_bits <= 0:
            raise ValueError(f"max_iter_bits must be positive, got {max_iter_bits}")
        self.log_entries = log_entries
        self.tag_bits = tag_bits
        self.confidence_threshold = confidence_threshold
        self.max_iter = (1 << max_iter_bits) - 1
        self.max_iter_bits = max_iter_bits
        self._entries = [_LoopEntry() for _ in range(1 << log_entries)]
        self._index_mask = mask(log_entries)
        self._tag_mask = mask(tag_bits)

    # -- lookup ------------------------------------------------------------

    def _index(self, pc: int) -> int:
        return (pc >> 2) & self._index_mask

    def _tag(self, pc: int) -> int:
        return ((pc >> 2) >> self.log_entries) & self._tag_mask

    def lookup(self, pc: int) -> tuple[bool, bool]:
        """Return (valid, prediction).

        ``valid`` is True only when the entry matches and is confident;
        ``prediction`` then says whether the next execution continues the
        loop (inside direction) or exits.
        """
        entry = self._entries[self._index(pc)]
        if entry.tag != self._tag(pc) or entry.confidence < self.confidence_threshold:
            return False, False
        if entry.current_iter + 1 >= entry.past_iter:
            return True, not entry.direction  # predict the exit
        return True, entry.direction

    def confident(self, pc: int) -> bool:
        """True when the matching entry (if any) is fully confident."""
        entry = self._entries[self._index(pc)]
        return entry.tag == self._tag(pc) and entry.confidence >= self.confidence_threshold

    # -- update ------------------------------------------------------------

    def update(self, pc: int, taken: bool, tage_mispredicted: bool) -> None:
        """Train on a resolved branch.

        Allocation policy follows L-TAGE: only allocate when the main
        predictor mispredicted (loops TAGE already gets right are not
        worth an entry).
        """
        index = self._index(pc)
        tag = self._tag(pc)
        entry = self._entries[index]

        if entry.tag == tag:
            self._train_matching(entry, taken)
            return
        if not tage_mispredicted:
            return
        # Allocate on a main-predictor misprediction if the slot is old.
        if entry.age > 0:
            entry.age -= 1
            return
        entry.tag = tag
        entry.past_iter = 0
        entry.current_iter = 0
        entry.confidence = 0
        entry.age = 7
        # TAGE typically mispredicts a loop at its *exit*, so the
        # mispredicted outcome is the exit direction and the
        # loop-continuing direction is its opposite (L-TAGE convention).
        entry.direction = not taken

    def _train_matching(self, entry: _LoopEntry, taken: bool) -> None:
        if taken == entry.direction:
            # Still inside the loop.
            if entry.current_iter < self.max_iter:
                entry.current_iter += 1
            else:
                # Iteration counter overflow: this is not a capturable loop.
                entry.reset()
            return
        # Loop exit: compare against the recorded trip count.
        completed = entry.current_iter + 1
        if completed == entry.past_iter:
            if entry.confidence < self.confidence_threshold:
                entry.confidence += 1
            if entry.age < 7:
                entry.age += 1
        else:
            if entry.confidence >= self.confidence_threshold:
                # A previously confident entry broke: drop it quickly.
                entry.confidence = 0
            entry.past_iter = completed
            entry.confidence = max(entry.confidence - 1, 0) if entry.past_iter else 0
        entry.current_iter = 0

    def storage_bits(self) -> int:
        per_entry = (
            self.tag_bits
            + 2 * self.max_iter_bits  # past_iter + current_iter
            + 2  # confidence
            + 3  # age
            + 1  # direction
        )
        return (1 << self.log_entries) * per_entry

    def reset(self) -> None:
        for entry in self._entries:
            entry.reset()


class LtagePredictor(BranchPredictor):
    """L-TAGE: TAGE + loop predictor with confidence-gated override.

    The observation record of the underlying TAGE predictor remains
    available through :attr:`last_prediction`; when the loop predictor
    overrides, :attr:`last_loop_override` is True and the prediction is
    near-certain (an additional high-confidence class on top of §5's
    seven — the paper's framework extends naturally).
    """

    name = "ltage"

    def __init__(
        self,
        config: TageConfig | None = None,
        loop_predictor: LoopPredictor | None = None,
    ) -> None:
        super().__init__()
        self.tage = TagePredictor(config or TageConfig.medium())
        self.loop = loop_predictor or LoopPredictor()
        self._last_loop_override = False
        self._last_tage_prediction = False

    @property
    def config(self) -> TageConfig:
        return self.tage.config

    @property
    def last_prediction(self):
        """The TAGE observation record for the confidence estimator."""
        return self.tage.last_prediction

    @property
    def last_loop_override(self) -> bool:
        """Did the loop predictor provide the final prediction?"""
        return self._last_loop_override

    def _predict(self, pc: int) -> bool:
        tage_prediction = self.tage.predict(pc)
        self._last_tage_prediction = tage_prediction
        valid, loop_prediction = self.loop.lookup(pc)
        if valid:
            self._last_loop_override = True
            return loop_prediction
        self._last_loop_override = False
        return tage_prediction

    def _train(self, pc: int, taken: bool) -> None:
        tage_mispredicted = self._last_tage_prediction != taken
        self.loop.update(pc, taken, tage_mispredicted)
        self.tage.train(pc, taken)

    def storage_bits(self) -> int:
        return self.tage.storage_bits() + self.loop.storage_bits()

    def reset(self) -> None:
        super().reset()
        self.tage.reset()
        self.loop.reset()
        self._last_loop_override = False
        self._last_tage_prediction = False
