"""Two-level local-history predictor (Yeh & Patt PAg/PAp style).

One of the "predictors that were defined before 2000" whose confidence
estimation the prior literature studied (§2 of the paper).  A first
level records each branch's own recent outcomes; the second level is a
pattern history table (PHT) of 2-bit counters indexed by that local
history.

Included as a baseline for the comparison benches: local history
captures the per-branch patterns our synthetic workloads contain, but
without TAGE's global-history correlation or capacity management.
"""

from __future__ import annotations

from repro.common.bitops import mask
from repro.predictors.base import BranchPredictor

__all__ = ["LocalHistoryPredictor"]


class LocalHistoryPredictor(BranchPredictor):
    """Two-level predictor with per-branch history.

    Args:
        log_histories: log2 of the level-1 history table size (indexed
            by PC).
        history_length: bits of local history per entry.
        log_pht: log2 of the level-2 pattern history table size.
        shared_pht: PAg (True: one shared PHT indexed by history only)
            or PAp-like (False: PC bits mixed into the PHT index).
    """

    name = "local-2level"

    def __init__(
        self,
        log_histories: int = 10,
        history_length: int = 10,
        log_pht: int = 12,
        shared_pht: bool = True,
    ) -> None:
        super().__init__()
        if log_histories <= 0:
            raise ValueError(f"log_histories must be positive, got {log_histories}")
        if history_length <= 0:
            raise ValueError(f"history_length must be positive, got {history_length}")
        if log_pht <= 0:
            raise ValueError(f"log_pht must be positive, got {log_pht}")
        if history_length > log_pht and shared_pht:
            raise ValueError(
                f"history_length ({history_length}) must fit the shared PHT index "
                f"({log_pht} bits)"
            )
        self.log_histories = log_histories
        self.history_length = history_length
        self.log_pht = log_pht
        self.shared_pht = shared_pht
        self._history_mask = mask(history_length)
        self._histories = [0] * (1 << log_histories)
        self._pht = [2] * (1 << log_pht)
        self._pht_mask = mask(log_pht)
        self._last_history_index = 0
        self._last_pht_index = 0
        self._last_counter = 0

    def _indices(self, pc: int) -> tuple[int, int]:
        history_index = (pc >> 2) & mask(self.log_histories)
        local_history = self._histories[history_index]
        if self.shared_pht:
            pht_index = local_history & self._pht_mask
        else:
            pht_index = (local_history ^ ((pc >> 2) << 2)) & self._pht_mask
        return history_index, pht_index

    def _predict(self, pc: int) -> bool:
        history_index, pht_index = self._indices(pc)
        counter = self._pht[pht_index]
        self._last_history_index = history_index
        self._last_pht_index = pht_index
        self._last_counter = counter
        return counter >= 2

    def _train(self, pc: int, taken: bool) -> None:
        counter = self._pht[self._last_pht_index]
        if taken:
            if counter < 3:
                self._pht[self._last_pht_index] = counter + 1
        elif counter > 0:
            self._pht[self._last_pht_index] = counter - 1
        history = self._histories[self._last_history_index]
        self._histories[self._last_history_index] = (
            (history << 1) | int(taken)
        ) & self._history_mask

    @property
    def last_counter(self) -> int:
        return self._last_counter

    def storage_bits(self) -> int:
        return (1 << self.log_histories) * self.history_length + (1 << self.log_pht) * 2

    def reset(self) -> None:
        super().reset()
        self._histories = [0] * (1 << self.log_histories)
        self._pht = [2] * (1 << self.log_pht)
        self._last_history_index = 0
        self._last_pht_index = 0
        self._last_counter = 0
