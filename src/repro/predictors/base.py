"""Common branch predictor interface.

Every predictor follows the trace-driven protocol the paper's simulator
uses:

1. ``predict(pc)`` returns the predicted direction *and caches the
   internal lookup context* (indices, matching components, counter
   values);
2. ``train(pc, taken)`` consumes the cached context to update tables and
   speculative history.

``train`` must be called exactly once after each ``predict`` and with the
same PC; the base class enforces this so a missed update is a loud error
rather than a silently corrupted experiment.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

__all__ = ["BranchPredictor", "PredictorError"]


class PredictorError(RuntimeError):
    """Raised when the predict/train protocol is violated."""


class BranchPredictor(ABC):
    """Abstract trace-driven branch predictor."""

    #: Human-readable predictor name (override in subclasses).
    name: str = "predictor"

    def __init__(self) -> None:
        self._pending_pc: int | None = None

    # -- protocol ------------------------------------------------------

    def predict(self, pc: int) -> bool:
        """Predict the direction of the branch at ``pc``."""
        if self._pending_pc is not None:
            raise PredictorError(
                f"predict({pc:#x}) called but train() for pc "
                f"{self._pending_pc:#x} is still pending"
            )
        prediction = self._predict(pc)
        self._pending_pc = pc
        return prediction

    def train(self, pc: int, taken: bool) -> None:
        """Update the predictor with the resolved direction of ``pc``."""
        if self._pending_pc is None:
            raise PredictorError(f"train({pc:#x}) called without a pending predict()")
        if self._pending_pc != pc:
            raise PredictorError(
                f"train({pc:#x}) does not match pending predict({self._pending_pc:#x})"
            )
        self._pending_pc = None
        self._train(pc, taken)

    def predict_and_train(self, pc: int, taken: bool) -> bool:
        """Convenience: one full predict/train step; returns the prediction."""
        prediction = self.predict(pc)
        self.train(pc, taken)
        return prediction

    # -- subclass hooks --------------------------------------------------

    @abstractmethod
    def _predict(self, pc: int) -> bool:
        """Compute the prediction and cache any context ``_train`` needs."""

    @abstractmethod
    def _train(self, pc: int, taken: bool) -> None:
        """Update state using the context cached by ``_predict``."""

    # -- introspection ---------------------------------------------------

    @abstractmethod
    def storage_bits(self) -> int:
        """Total predictor storage in bits (the paper's budget metric)."""

    def reset(self) -> None:
        """Restore the power-on state.  Subclasses should extend this."""
        self._pending_pc = None
