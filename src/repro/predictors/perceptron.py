"""Jiménez & Lin's global perceptron predictor.

Included as the substrate for *perceptron self-confidence* [5]: a
prediction is high confidence when the absolute value of the perceptron
output exceeds the training threshold, low confidence otherwise.  The
paper's §2.2 contrasts this storage-free baseline with its own TAGE
observation classes; the comparison bench
(``benchmarks/test_bench_baseline_estimators.py``) reproduces it.

Implementation follows the classic formulation: a PC-indexed table of
signed weight vectors, prediction ``y = w0 + sum(w_i * x_i)`` with
``x_i = +1/-1`` for taken/not-taken history bits, training on a
misprediction or when ``|y| <= theta`` with ``theta = 1.93 * h + 14``.
"""

from __future__ import annotations

from repro.common.bitops import mask
from repro.common.history import GlobalHistory
from repro.predictors.base import BranchPredictor

__all__ = ["PerceptronPredictor"]


class PerceptronPredictor(BranchPredictor):
    """Global perceptron with the canonical threshold ``1.93 * h + 14``.

    Args:
        log_entries: log2 of the number of perceptrons.
        history_length: global history bits per perceptron.
        weight_bits: signed weight width (8 in the original proposal).
    """

    name = "perceptron"

    def __init__(
        self,
        log_entries: int = 9,
        history_length: int = 28,
        weight_bits: int = 8,
    ) -> None:
        super().__init__()
        if log_entries <= 0:
            raise ValueError(f"log_entries must be positive, got {log_entries}")
        if history_length <= 0:
            raise ValueError(f"history_length must be positive, got {history_length}")
        if weight_bits <= 1:
            raise ValueError(f"weight_bits must be > 1, got {weight_bits}")
        self.log_entries = log_entries
        self.history_length = history_length
        self.weight_bits = weight_bits
        self.threshold = int(1.93 * history_length + 14)
        self._weight_max = (1 << (weight_bits - 1)) - 1
        self._weight_min = -(1 << (weight_bits - 1))
        self._mask = mask(log_entries)
        # weights[i] is the vector [bias, w1 .. wh] of perceptron i.
        self._weights = [[0] * (history_length + 1) for _ in range(1 << log_entries)]
        self._history = GlobalHistory(capacity=history_length)
        self._last_index = 0
        self._last_sum = 0

    def _index(self, pc: int) -> int:
        return (pc >> 2) & self._mask

    def _predict(self, pc: int) -> bool:
        index = self._index(pc)
        weights = self._weights[index]
        window = self._history.window(self.history_length)
        total = weights[0]
        for position in range(self.history_length):
            if (window >> position) & 1:
                total += weights[position + 1]
            else:
                total -= weights[position + 1]
        self._last_index = index
        self._last_sum = total
        return total >= 0

    def _train(self, pc: int, taken: bool) -> None:
        total = self._last_sum
        prediction = total >= 0
        if prediction != taken or abs(total) <= self.threshold:
            weights = self._weights[self._last_index]
            window = self._history.window(self.history_length)
            direction = 1 if taken else -1
            weights[0] = self._clip(weights[0] + direction)
            for position in range(self.history_length):
                bit_agrees = bool((window >> position) & 1) == taken
                delta = 1 if bit_agrees else -1
                weights[position + 1] = self._clip(weights[position + 1] + delta)
        self._history.push(taken)

    def _clip(self, weight: int) -> int:
        if weight > self._weight_max:
            return self._weight_max
        if weight < self._weight_min:
            return self._weight_min
        return weight

    @property
    def last_sum(self) -> int:
        """Perceptron output of the most recent prediction (the
        self-confidence signal)."""
        return self._last_sum

    def last_prediction_is_high_confidence(self) -> bool:
        """Self-confidence rule from [5]: ``|y| > theta``."""
        return abs(self._last_sum) > self.threshold

    def storage_bits(self) -> int:
        return (1 << self.log_entries) * (self.history_length + 1) * self.weight_bits

    def reset(self) -> None:
        super().reset()
        self._weights = [
            [0] * (self.history_length + 1) for _ in range(1 << self.log_entries)
        ]
        self._history.reset()
        self._last_index = 0
        self._last_sum = 0
