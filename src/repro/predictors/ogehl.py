"""Seznec's O-GEHL predictor [11].

The Optimized GEometric History Length predictor sums small signed
counters read from M tables indexed with geometrically increasing history
lengths, predicts on the sign of the sum and trains when mispredicted or
when the sum magnitude is under a dynamically adapted threshold.

It matters to this reproduction for two reasons:

* the geometric history length series ``L(i) = round(alpha**(i-1) * L(1))``
  that TAGE inherits was introduced here;
* §2.2 of the paper quotes the O-GEHL *self-confidence* estimator
  (``|sum| < threshold`` = low confidence) as the prior storage-free
  technique: "about one third of the low confidence predictions are in
  practice mispredicted ... only half of the mispredicted branches are
  effectively classified as low confidence".  The baseline bench
  reproduces those two numbers.

This is a faithful but compact O-GEHL: geometric histories, per-table
folded indices, adaptive threshold via the TC counter, and the update-on-
low-magnitude rule.  (The dynamic history-length fitting of the full CBP
version is omitted; it does not participate in the confidence story.)
"""

from __future__ import annotations

from repro.common.bitops import mask
from repro.common.history import FoldedHistory, GlobalHistory
from repro.predictors.base import BranchPredictor

__all__ = ["OgehlPredictor", "geometric_history_lengths"]


def geometric_history_lengths(minimum: int, maximum: int, count: int) -> list[int]:
    """The geometric series ``L(i)`` used by O-GEHL and TAGE.

    ``L(1) = minimum``, ``L(count) = maximum`` and intermediate lengths
    follow ``L(i) = round(minimum * alpha**(i-1))`` with
    ``alpha = (maximum / minimum) ** (1 / (count - 1))``.  Lengths are
    strictly increasing (enforced by bumping duplicates, which only occurs
    for very short series).

    >>> geometric_history_lengths(5, 130, 7)
    [5, 9, 15, 26, 44, 76, 130]
    """
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    if minimum <= 0 or maximum < minimum:
        raise ValueError(f"need 0 < minimum <= maximum, got {minimum}, {maximum}")
    if count == 1:
        return [minimum]
    alpha = (maximum / minimum) ** (1.0 / (count - 1))
    lengths: list[int] = []
    for i in range(count):
        length = int(minimum * alpha**i + 0.5)
        if lengths and length <= lengths[-1]:
            length = lengths[-1] + 1
        lengths.append(length)
    lengths[-1] = max(lengths[-1], maximum)
    return lengths


class OgehlPredictor(BranchPredictor):
    """Sum-of-counters geometric-history predictor.

    Args:
        n_tables: number of counter tables (first is PC-indexed only).
        log_entries: log2 entries per table.
        counter_bits: signed counter width (4 or 5 in the paper).
        min_history / max_history: geometric series endpoints for the
            history-indexed tables.
    """

    name = "ogehl"

    def __init__(
        self,
        n_tables: int = 8,
        log_entries: int = 10,
        counter_bits: int = 4,
        min_history: int = 3,
        max_history: int = 120,
    ) -> None:
        super().__init__()
        if n_tables < 2:
            raise ValueError(f"need at least 2 tables, got {n_tables}")
        if log_entries <= 0:
            raise ValueError(f"log_entries must be positive, got {log_entries}")
        self.n_tables = n_tables
        self.log_entries = log_entries
        self.counter_bits = counter_bits
        self.history_lengths = geometric_history_lengths(
            min_history, max_history, n_tables - 1
        )
        self._ctr_max = (1 << (counter_bits - 1)) - 1
        self._ctr_min = -(1 << (counter_bits - 1))
        self._mask = mask(log_entries)
        self._tables = [[0] * (1 << log_entries) for _ in range(n_tables)]
        # history_lengths can exceed max_history by a step or two when the
        # duplicate-bumping in geometric_history_lengths fires (very short
        # series); size the register to the actual longest window, like
        # the TAGE predictor does.
        self._history = GlobalHistory(
            capacity=max(max_history, self.history_lengths[-1])
        )
        self._folded = [
            FoldedHistory(length, log_entries) for length in self.history_lengths
        ]
        # Adaptive threshold state (paper's theta/TC mechanism).
        self.threshold = n_tables
        self._threshold_counter = 0
        self._last_indices = [0] * n_tables
        self._last_sum = 0

    # -- index computation ---------------------------------------------

    def _indices(self, pc: int) -> list[int]:
        base = (pc >> 2) & self._mask
        indices = [base]
        for table, folded in enumerate(self._folded, start=1):
            value = (pc >> 2) ^ ((pc >> 2) >> (table + 1)) ^ folded.value
            indices.append(value & self._mask)
        return indices

    def _predict(self, pc: int) -> bool:
        indices = self._indices(pc)
        total = 0
        for table, index in enumerate(indices):
            total += self._tables[table][index]
        # The constant bias term makes sum == 0 lean taken, like the paper.
        total = 2 * total + self.n_tables
        self._last_indices = indices
        self._last_sum = total
        return total >= 0

    def _train(self, pc: int, taken: bool) -> None:
        total = self._last_sum
        prediction = total >= 0
        mispredicted = prediction != taken
        if mispredicted or abs(total) < self.threshold:
            for table, index in enumerate(self._last_indices):
                counter = self._tables[table][index]
                if taken:
                    if counter < self._ctr_max:
                        self._tables[table][index] = counter + 1
                elif counter > self._ctr_min:
                    self._tables[table][index] = counter - 1
        # Adaptive threshold: mispredictions push theta up, low-magnitude
        # correct predictions push it down (the O-GEHL TC mechanism).
        if mispredicted:
            self._threshold_counter += 1
            if self._threshold_counter >= 4:
                self._threshold_counter = 0
                self.threshold += 1
        elif abs(total) < self.threshold:
            self._threshold_counter -= 1
            if self._threshold_counter <= -4:
                self._threshold_counter = 0
                if self.threshold > 1:
                    self.threshold -= 1
        # History updates.
        longest = self.history_lengths[-1]
        for folded, length in zip(self._folded, self.history_lengths):
            outgoing = self._history.bit(length - 1) if length <= longest else 0
            folded.update(int(taken), outgoing)
        self._history.push(taken)

    @property
    def last_sum(self) -> int:
        """Prediction sum of the most recent prediction (the O-GEHL
        self-confidence signal)."""
        return self._last_sum

    def last_prediction_is_high_confidence(self) -> bool:
        """Self-confidence rule: high confidence iff ``|sum| >= theta``."""
        return abs(self._last_sum) >= self.threshold

    def storage_bits(self) -> int:
        return self.n_tables * (1 << self.log_entries) * self.counter_bits

    def reset(self) -> None:
        super().reset()
        self._tables = [[0] * (1 << self.log_entries) for _ in range(self.n_tables)]
        self._history.reset()
        for folded in self._folded:
            folded.reset()
        self.threshold = self.n_tables
        self._threshold_counter = 0
        self._last_indices = [0] * self.n_tables
        self._last_sum = 0
