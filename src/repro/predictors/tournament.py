"""Alpha 21264-style tournament predictor.

Combines a local two-level predictor and a global (gshare-style)
predictor through a PC-indexed chooser table of 2-bit counters.  This is
the strongest widely deployed pre-TAGE design and rounds out the
baseline set the paper's related work discusses (§2).

The chooser counter also yields a classic weak self-confidence signal
(agreement of the two components), exposed as
:meth:`components_agree` for the comparison benches.
"""

from __future__ import annotations

from repro.common.bitops import mask
from repro.predictors.base import BranchPredictor
from repro.predictors.gshare import GsharePredictor
from repro.predictors.local import LocalHistoryPredictor

__all__ = ["TournamentPredictor"]


class TournamentPredictor(BranchPredictor):
    """local + global with a 2-bit chooser.

    Chooser semantics: counter >= 2 selects the global component.  The
    chooser trains only when the two components disagree, toward
    whichever was correct.
    """

    name = "tournament"

    def __init__(
        self,
        local: LocalHistoryPredictor | None = None,
        global_: GsharePredictor | None = None,
        log_chooser: int = 12,
    ) -> None:
        super().__init__()
        if log_chooser <= 0:
            raise ValueError(f"log_chooser must be positive, got {log_chooser}")
        self.local = local or LocalHistoryPredictor()
        self.global_ = global_ or GsharePredictor(log_entries=12, history_length=12)
        self.log_chooser = log_chooser
        self._chooser = [2] * (1 << log_chooser)
        self._chooser_mask = mask(log_chooser)
        self._last_local = False
        self._last_global = False
        self._last_chooser_index = 0

    def _predict(self, pc: int) -> bool:
        local_prediction = self.local.predict(pc)
        global_prediction = self.global_.predict(pc)
        chooser_index = (pc >> 2) & self._chooser_mask
        self._last_local = local_prediction
        self._last_global = global_prediction
        self._last_chooser_index = chooser_index
        if self._chooser[chooser_index] >= 2:
            return global_prediction
        return local_prediction

    def _train(self, pc: int, taken: bool) -> None:
        local_prediction = self._last_local
        global_prediction = self._last_global
        if local_prediction != global_prediction:
            index = self._last_chooser_index
            counter = self._chooser[index]
            if global_prediction == taken:
                if counter < 3:
                    self._chooser[index] = counter + 1
            elif counter > 0:
                self._chooser[index] = counter - 1
        self.local.train(pc, taken)
        self.global_.train(pc, taken)

    def components_agree(self) -> bool:
        """Both components predicted the same direction this cycle — the
        classic (weak) agreement confidence signal."""
        return self._last_local == self._last_global

    def storage_bits(self) -> int:
        return (
            self.local.storage_bits()
            + self.global_.storage_bits()
            + (1 << self.log_chooser) * 2
        )

    def reset(self) -> None:
        super().reset()
        self.local.reset()
        self.global_.reset()
        self._chooser = [2] * (1 << self.log_chooser)
        self._last_local = False
        self._last_global = False
        self._last_chooser_index = 0
