"""Bit-level substrate shared by every predictor in the repository.

The modules here are deliberately dependency-free (stdlib only) so that the
predictor implementations read like their hardware counterparts:

``counters``
    Saturating signed/unsigned counter arithmetic (both free functions used
    in predictor inner loops and small counter classes for bookkeeping
    state such as ``USE_ALT_ON_NA``).
``rng``
    Deterministic pseudo-random sources standing in for the hardware LFSR
    that the paper's probabilistic counter automaton requires.
``history``
    Global branch history, path history and incrementally *folded*
    histories (the classic TAGE/O-GEHL circular-shift folding).
``bitops``
    Small hashing/mixing helpers used to build table indices and partial
    tags.
"""

from repro.common.bitops import fold_bits, mask, mix_pc, reverse_bits
from repro.common.counters import (
    SaturatingCounter,
    SignedSaturatingCounter,
    ctr_strength,
    saturating_update,
    signed_saturating_update,
)
from repro.common.history import FoldedHistory, GlobalHistory, PathHistory
from repro.common.rng import Lfsr32, SplitMix64, XorShift32

__all__ = [
    "FoldedHistory",
    "GlobalHistory",
    "Lfsr32",
    "PathHistory",
    "SaturatingCounter",
    "SignedSaturatingCounter",
    "SplitMix64",
    "XorShift32",
    "ctr_strength",
    "fold_bits",
    "mask",
    "mix_pc",
    "reverse_bits",
    "saturating_update",
    "signed_saturating_update",
]
