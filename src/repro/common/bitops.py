"""Bit manipulation helpers for table indexing and tag computation.

Branch predictors address SRAM tables with a small number of index bits
derived from the program counter and (folded) branch history.  The helpers
here implement the usual mixing idioms found in the reference TAGE
simulators: shifted-PC xor folding, bit reversal for tag hashing and
fixed-width masking.
"""

from __future__ import annotations

__all__ = ["mask", "fold_bits", "mix_pc", "reverse_bits", "parity"]


def mask(width: int) -> int:
    """Return a bit mask with the ``width`` low bits set.

    >>> mask(4)
    15
    >>> mask(0)
    0
    """
    if width < 0:
        raise ValueError(f"mask width must be non-negative, got {width}")
    return (1 << width) - 1


def fold_bits(value: int, width: int) -> int:
    """Fold an arbitrarily long non-negative integer into ``width`` bits.

    Successive ``width``-bit chunks of ``value`` are xor-ed together.  This
    is the stateless equivalent of the circular-shift-register folding used
    for history compression (see :class:`repro.common.history.FoldedHistory`
    for the O(1) incremental variant used in the simulation inner loop).

    >>> fold_bits(0b1011_0110, 4)  # 0b1011 ^ 0b0110
    13
    """
    if width <= 0:
        raise ValueError(f"fold width must be positive, got {width}")
    if value < 0:
        raise ValueError(f"cannot fold negative value {value}")
    folded = 0
    chunk_mask = mask(width)
    while value:
        folded ^= value & chunk_mask
        value >>= width
    return folded


def mix_pc(pc: int, width: int) -> int:
    """Hash a program counter down to ``width`` bits.

    Mixes in higher PC bits with two shifted xors so that branches whose
    addresses differ only above the index range still map to different
    entries reasonably often.  This mirrors the ``pc ^ (pc >> shift)``
    idiom of the reference TAGE code.
    """
    if width <= 0:
        raise ValueError(f"mix width must be positive, got {width}")
    mixed = pc ^ (pc >> width) ^ (pc >> (2 * width))
    return mixed & mask(width)


def reverse_bits(value: int, width: int) -> int:
    """Reverse the low ``width`` bits of ``value``.

    Used by the tag hash so that the second history folding contributes
    bits in the opposite order from the first, decorrelating the two.

    >>> reverse_bits(0b0011, 4)
    12
    """
    if width < 0:
        raise ValueError(f"width must be non-negative, got {width}")
    result = 0
    for _ in range(width):
        result = (result << 1) | (value & 1)
        value >>= 1
    return result


def parity(value: int) -> int:
    """Return the xor of all bits of a non-negative integer (0 or 1)."""
    if value < 0:
        raise ValueError(f"parity of negative value {value} is undefined")
    return bin(value).count("1") & 1
