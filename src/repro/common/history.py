"""Branch history registers.

``GlobalHistory``
    Shift register of branch outcomes; supports querying the bit that
    *leaves* an arbitrary-length window, which the folded histories need
    for O(1) incremental updates.
``PathHistory``
    Short register of low PC bits of recent branches, mixed into TAGE
    indices to break pathological aliasing.
``FoldedHistory``
    The classic circular-shift-register compression of a long history into
    a table-index-sized value (Michaud folding, used by O-GEHL and TAGE).

A naive recomputation of an L-bit folded history costs O(L) per branch;
the incremental form costs O(1) and the two are kept equivalent by a
property-based test in ``tests/common/test_history.py``.
"""

from __future__ import annotations

from repro.common.bitops import mask

__all__ = ["GlobalHistory", "PathHistory", "FoldedHistory"]


class GlobalHistory:
    """Global branch outcome history, most recent outcome in bit 0.

    The register keeps ``capacity`` bits; reads beyond the capacity raise.

    >>> h = GlobalHistory(capacity=8)
    >>> h.push(True); h.push(False)
    >>> h.bit(0), h.bit(1)
    (0, 1)
    """

    __slots__ = ("capacity", "_bits", "_mask")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"history capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._bits = 0
        self._mask = mask(capacity)

    def push(self, taken: bool) -> None:
        """Shift in the newest outcome (1 = taken)."""
        self._bits = ((self._bits << 1) | int(taken)) & self._mask

    def bit(self, age: int) -> int:
        """Outcome of the branch ``age`` steps ago (0 = most recent)."""
        if not 0 <= age < self.capacity:
            raise IndexError(f"history age {age} outside capacity {self.capacity}")
        return (self._bits >> age) & 1

    def window(self, length: int) -> int:
        """The most recent ``length`` outcomes packed into an int."""
        if not 0 <= length <= self.capacity:
            raise ValueError(f"window length {length} outside capacity {self.capacity}")
        return self._bits & mask(length)

    def reset(self) -> None:
        self._bits = 0

    def __repr__(self) -> str:
        return f"GlobalHistory(capacity={self.capacity}, bits={self._bits:#x})"


class PathHistory:
    """Register of low PC bits of the most recent branches.

    TAGE mixes a short path history into its indices; one bit of the PC per
    branch, bounded length.

    >>> p = PathHistory(length=16)
    >>> p.push(0x4004f7)
    >>> p.value & 1
    1
    """

    __slots__ = ("length", "_bits", "_mask")

    def __init__(self, length: int) -> None:
        if length <= 0:
            raise ValueError(f"path history length must be positive, got {length}")
        self.length = length
        self._bits = 0
        self._mask = mask(length)

    def push(self, pc: int) -> None:
        self._bits = ((self._bits << 1) | (pc & 1)) & self._mask

    @property
    def value(self) -> int:
        return self._bits

    def reset(self) -> None:
        self._bits = 0

    def __repr__(self) -> str:
        return f"PathHistory(length={self.length}, bits={self._bits:#x})"


class FoldedHistory:
    """Incrementally folded history: ``original_length`` bits into
    ``compressed_length`` bits.

    Folding treats the history as a polynomial over GF(2) reduced modulo
    ``x**compressed_length + 1``; inserting the newest bit and removing the
    oldest are both O(1):

    * shift the compressed register left by one, inserting the new bit;
    * xor the outgoing (oldest) bit at position
      ``original_length % compressed_length``;
    * wrap the bit that overflowed the register back into bit 0.

    The register state is a linear function (over GF(2)) of the live
    history bits: a bit of age *a* (0 = newest) contributes at position
    ``a % compressed_length``.  :meth:`fold_window` computes that closed
    form directly and serves as the oracle for the incremental update.
    """

    __slots__ = ("original_length", "compressed_length", "_comp", "_out_pos", "_mask")

    def __init__(self, original_length: int, compressed_length: int) -> None:
        if original_length <= 0:
            raise ValueError(f"original length must be positive, got {original_length}")
        if compressed_length <= 0:
            raise ValueError(f"compressed length must be positive, got {compressed_length}")
        self.original_length = original_length
        self.compressed_length = compressed_length
        self._comp = 0
        self._out_pos = original_length % compressed_length
        self._mask = mask(compressed_length)

    @property
    def value(self) -> int:
        return self._comp

    def update(self, new_bit: int, outgoing_bit: int) -> None:
        """Advance by one branch.

        ``new_bit`` is the outcome entering the history window and
        ``outgoing_bit`` the outcome leaving it (the bit that was
        ``original_length - 1`` steps old before this update).
        """
        comp = (self._comp << 1) | (new_bit & 1)
        comp ^= (outgoing_bit & 1) << self._out_pos
        comp ^= comp >> self.compressed_length
        self._comp = comp & self._mask

    def reset(self) -> None:
        self._comp = 0

    @staticmethod
    def fold_window(window: int, original_length: int, compressed_length: int) -> int:
        """Reference (non-incremental) folding of a history ``window``.

        ``window`` holds ``original_length`` outcomes with the most recent
        outcome in bit 0 — i.e. bit *k* of ``window`` is the outcome of the
        branch *k* steps ago.  Because reduction modulo
        ``x**compressed_length + 1`` maps ``x**a`` to ``x**(a % c)``, a bit
        of age *a* lands at position ``a % compressed_length``.  This is the
        test oracle for :meth:`update`.
        """
        acc = 0
        for age in range(original_length):
            if (window >> age) & 1:
                acc ^= 1 << (age % compressed_length)
        return acc

    def __repr__(self) -> str:
        return (
            f"FoldedHistory(original_length={self.original_length}, "
            f"compressed_length={self.compressed_length}, value={self._comp:#x})"
        )
