"""Saturating counter arithmetic.

Two styles are provided:

* free functions (:func:`saturating_update`,
  :func:`signed_saturating_update`) for predictor inner loops where object
  overhead matters;
* small classes (:class:`SaturatingCounter`,
  :class:`SignedSaturatingCounter`) for low-frequency bookkeeping state
  such as TAGE's ``USE_ALT_ON_NA`` counter.

Conventions follow the TAGE papers: an *n*-bit signed counter covers
``[-2**(n-1), 2**(n-1) - 1]``; the *sign* (counter >= 0) is the taken
prediction; the counter is *weak* when it is ``0`` or ``-1``; the paper's
class discriminator is ``|2*ctr + 1|`` which is ``1`` for weak counters and
``2**n - 1`` for saturated ones.
"""

from __future__ import annotations

__all__ = [
    "saturating_update",
    "signed_saturating_update",
    "ctr_strength",
    "is_weak",
    "is_saturated",
    "SaturatingCounter",
    "SignedSaturatingCounter",
]


def saturating_update(value: int, up: bool, bits: int) -> int:
    """Move an unsigned ``bits``-wide counter one step up or down, saturating.

    >>> saturating_update(3, True, 2)
    3
    >>> saturating_update(0, False, 2)
    0
    """
    if up:
        limit = (1 << bits) - 1
        return value + 1 if value < limit else value
    return value - 1 if value > 0 else value


def signed_saturating_update(value: int, up: bool, bits: int) -> int:
    """Move a signed ``bits``-wide counter one step up or down, saturating.

    The representable range is ``[-2**(bits-1), 2**(bits-1) - 1]``.

    >>> signed_saturating_update(3, True, 3)
    3
    >>> signed_saturating_update(-4, False, 3)
    -4
    """
    if up:
        limit = (1 << (bits - 1)) - 1
        return value + 1 if value < limit else value
    limit = -(1 << (bits - 1))
    return value - 1 if value > limit else value


def ctr_strength(ctr: int) -> int:
    """Return the paper's confidence discriminator ``|2*ctr + 1|``.

    For a 3-bit counter the possible values are 1 (weak), 3 (nearly weak),
    5 (nearly saturated) and 7 (saturated); the value is symmetric for
    taken/not-taken predictions.

    >>> [ctr_strength(c) for c in range(-4, 4)]
    [7, 5, 3, 1, 1, 3, 5, 7]
    """
    return abs(2 * ctr + 1)


def is_weak(ctr: int) -> bool:
    """True when a signed prediction counter is in a weak state (0 or -1)."""
    return ctr in (0, -1)


def is_saturated(ctr: int, bits: int) -> bool:
    """True when a signed ``bits``-wide counter is at either rail."""
    return ctr == (1 << (bits - 1)) - 1 or ctr == -(1 << (bits - 1))


class SaturatingCounter:
    """Unsigned saturating counter with a configurable width.

    >>> c = SaturatingCounter(bits=2, initial=0)
    >>> c.increment(); c.increment(); c.value
    2
    """

    __slots__ = ("bits", "_value", "_max")

    def __init__(self, bits: int, initial: int = 0) -> None:
        if bits <= 0:
            raise ValueError(f"counter width must be positive, got {bits}")
        self.bits = bits
        self._max = (1 << bits) - 1
        if not 0 <= initial <= self._max:
            raise ValueError(f"initial value {initial} out of range for {bits} bits")
        self._value = initial

    @property
    def value(self) -> int:
        return self._value

    @value.setter
    def value(self, new_value: int) -> None:
        if not 0 <= new_value <= self._max:
            raise ValueError(f"value {new_value} out of range for {self.bits} bits")
        self._value = new_value

    @property
    def max_value(self) -> int:
        return self._max

    def increment(self) -> None:
        if self._value < self._max:
            self._value += 1

    def decrement(self) -> None:
        if self._value > 0:
            self._value -= 1

    def reset(self, value: int = 0) -> None:
        self.value = value

    def is_max(self) -> bool:
        return self._value == self._max

    def __repr__(self) -> str:
        return f"SaturatingCounter(bits={self.bits}, value={self._value})"


class SignedSaturatingCounter:
    """Signed saturating counter, range ``[-2**(bits-1), 2**(bits-1)-1]``.

    The boolean interpretation (``positive_or_zero``) matches the TAGE
    convention that the counter sign encodes a taken/not-taken prediction.

    >>> c = SignedSaturatingCounter(bits=4, initial=0)
    >>> c.update(up=False); c.value
    -1
    >>> c.positive_or_zero
    False
    """

    __slots__ = ("bits", "_value", "_min", "_max")

    def __init__(self, bits: int, initial: int = 0) -> None:
        if bits <= 0:
            raise ValueError(f"counter width must be positive, got {bits}")
        self.bits = bits
        self._max = (1 << (bits - 1)) - 1
        self._min = -(1 << (bits - 1))
        if not self._min <= initial <= self._max:
            raise ValueError(f"initial value {initial} out of range for {bits} bits")
        self._value = initial

    @property
    def value(self) -> int:
        return self._value

    @value.setter
    def value(self, new_value: int) -> None:
        if not self._min <= new_value <= self._max:
            raise ValueError(f"value {new_value} out of range for {self.bits} bits")
        self._value = new_value

    @property
    def min_value(self) -> int:
        return self._min

    @property
    def max_value(self) -> int:
        return self._max

    @property
    def positive_or_zero(self) -> bool:
        return self._value >= 0

    def update(self, up: bool) -> None:
        if up:
            if self._value < self._max:
                self._value += 1
        elif self._value > self._min:
            self._value -= 1

    def reset(self, value: int = 0) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"SignedSaturatingCounter(bits={self.bits}, value={self._value})"
