"""Deterministic pseudo-random sources.

The paper's modified 3-bit counter automaton takes the transition into the
saturated state "only randomly with a small probability" (1/128 in the
illustrated experiments).  In hardware this is a free-running LFSR; here we
provide a Galois LFSR (:class:`Lfsr32`) plus two conventional software
generators used by workload construction (:class:`SplitMix64`) and by the
predictor's allocation tie-breaking (:class:`XorShift32`).

All generators are seedable and fully deterministic so every experiment in
the repository is reproducible bit-for-bit.
"""

from __future__ import annotations

__all__ = ["Lfsr32", "XorShift32", "SplitMix64"]

_MASK32 = 0xFFFFFFFF
_MASK64 = 0xFFFFFFFFFFFFFFFF


class Lfsr32:
    """32-bit Galois LFSR with the maximal-length taps 0xA3000000.

    ``one_in_pow2(k)`` models the hardware trick of AND-ing ``k`` LFSR bits
    to obtain a ``1/2**k`` probability signal.

    >>> lfsr = Lfsr32(seed=1)
    >>> bits = [lfsr.next_bit() for _ in range(8)]
    >>> all(b in (0, 1) for b in bits)
    True
    """

    __slots__ = ("_state",)

    _TAPS = 0xA3000000

    def __init__(self, seed: int = 0xDEADBEEF) -> None:
        seed &= _MASK32
        if seed == 0:
            seed = 0xDEADBEEF  # the all-zero state is absorbing for an LFSR
        self._state = seed

    @property
    def state(self) -> int:
        return self._state

    def next_bit(self) -> int:
        """Advance one step and return the output bit."""
        lsb = self._state & 1
        self._state >>= 1
        if lsb:
            self._state ^= self._TAPS
        return lsb

    def next_bits(self, n: int) -> int:
        """Advance ``n`` steps and return them packed LSB-first."""
        if n < 0:
            raise ValueError(f"bit count must be non-negative, got {n}")
        value = 0
        for i in range(n):
            value |= self.next_bit() << i
        return value

    def one_in_pow2(self, log2_denominator: int) -> bool:
        """Return True with probability ``1 / 2**log2_denominator``.

        ``log2_denominator == 0`` always returns True (probability 1),
        matching the upper end of the paper's adaptive range.
        """
        if log2_denominator < 0:
            raise ValueError(f"log2 denominator must be non-negative, got {log2_denominator}")
        if log2_denominator == 0:
            return True
        return self.next_bits(log2_denominator) == 0


class XorShift32:
    """Marsaglia xorshift32: fast uniform 32-bit generator.

    >>> rng = XorShift32(seed=42)
    >>> 0 <= rng.next_below(10) < 10
    True
    """

    __slots__ = ("_state",)

    def __init__(self, seed: int = 0x12345678) -> None:
        seed &= _MASK32
        if seed == 0:
            seed = 0x12345678
        self._state = seed

    def next_u32(self) -> int:
        x = self._state
        x ^= (x << 13) & _MASK32
        x ^= x >> 17
        x ^= (x << 5) & _MASK32
        self._state = x
        return x

    def next_below(self, bound: int) -> int:
        """Uniform-ish integer in ``[0, bound)`` (modulo bias is acceptable
        for allocation tie-breaking)."""
        if bound <= 0:
            raise ValueError(f"bound must be positive, got {bound}")
        return self.next_u32() % bound

    def next_float(self) -> float:
        """Uniform float in ``[0, 1)``."""
        return self.next_u32() / 4294967296.0


class SplitMix64:
    """SplitMix64: high-quality 64-bit generator used by trace synthesis.

    >>> rng = SplitMix64(seed=7)
    >>> rng.next_u64() != rng.next_u64()
    True
    """

    __slots__ = ("_state",)

    def __init__(self, seed: int = 0) -> None:
        self._state = seed & _MASK64

    def next_u64(self) -> int:
        self._state = (self._state + 0x9E3779B97F4A7C15) & _MASK64
        z = self._state
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
        return z ^ (z >> 31)

    def next_below(self, bound: int) -> int:
        if bound <= 0:
            raise ValueError(f"bound must be positive, got {bound}")
        return self.next_u64() % bound

    def next_float(self) -> float:
        """Uniform float in ``[0, 1)`` with 53 bits of precision."""
        return (self.next_u64() >> 11) / 9007199254740992.0

    def fork(self) -> "SplitMix64":
        """Derive an independent child generator (for per-branch streams)."""
        return SplitMix64(self.next_u64())
