"""Confidence-directed dual/multipath execution (Klauser et al. [6]).

§2.1: "Dual or multipath execution heavily rely on the use of such a
confidence estimator."  On a low-confidence branch the machine *forks*
and fetches both paths: the misprediction penalty disappears (the
correct path is already in flight) at the cost of the duplicated fetch
bandwidth until resolution.

Model (branch-granular, like the other app models):

* a mispredicted non-forked branch costs ``mispredict_penalty`` cycles;
* a forked branch costs ``fork_overhead_per_branch * resolution_latency``
  fetch slots (the wrong path's bandwidth) but never pays the penalty;
* forks are capped by ``max_outstanding_forks`` (real designs fork on
  one or two branches at a time).

The interesting figure is net cycles saved as a function of which
confidence levels fork — forking on everything wastes bandwidth,
forking on nothing wastes penalty; a good estimator makes LOW-only
forking profitable.

Like the other apps, the model is a replay pass: fork decisions never
feed back into the predictor, so the per-branch (level, mispredicted)
stream comes from :func:`repro.sim.observe.observe_trace` on either
simulation backend and the policy replays over it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.confidence.classes import ConfidenceLevel
from repro.confidence.estimator import TageConfidenceEstimator
from repro.sim.backends import DEFAULT_BACKEND
from repro.sim.observe import ObservationStream, observe_trace

__all__ = ["MultipathPolicy", "MultipathStats", "MultipathModel"]


@dataclass(frozen=True)
class MultipathPolicy:
    """Which confidence levels fork, and the machine cost model."""

    fork_on_low: bool = True
    fork_on_medium: bool = False
    mispredict_penalty: int = 15
    fork_overhead_per_branch: int = 2
    max_outstanding_forks: int = 2

    def __post_init__(self) -> None:
        if self.mispredict_penalty <= 0:
            raise ValueError(
                f"mispredict_penalty must be positive, got {self.mispredict_penalty}"
            )
        if self.fork_overhead_per_branch < 0:
            raise ValueError(
                "fork_overhead_per_branch must be non-negative, "
                f"got {self.fork_overhead_per_branch}"
            )
        if self.max_outstanding_forks <= 0:
            raise ValueError(
                f"max_outstanding_forks must be positive, got {self.max_outstanding_forks}"
            )

    def should_fork(self, level: ConfidenceLevel) -> bool:
        if level is ConfidenceLevel.LOW:
            return self.fork_on_low
        if level is ConfidenceLevel.MEDIUM:
            return self.fork_on_medium
        return False


@dataclass
class MultipathStats:
    """Cost accounting of one multipath run (units: cycles/slots)."""

    total_branches: int = 0
    mispredictions: int = 0
    forks: int = 0
    forks_denied: int = 0
    covered_mispredictions: int = 0
    penalty_cycles: int = 0
    penalty_cycles_avoided: int = 0
    fork_overhead_cycles: int = 0

    @property
    def baseline_penalty_cycles(self) -> int:
        """Penalty the machine would pay with no multipath at all."""
        return self.penalty_cycles + self.penalty_cycles_avoided

    @property
    def net_cycles_saved(self) -> int:
        return self.penalty_cycles_avoided - self.fork_overhead_cycles

    @property
    def fork_rate(self) -> float:
        return self.forks / self.total_branches if self.total_branches else 0.0

    @property
    def useful_fork_rate(self) -> float:
        """Fraction of forks that actually covered a misprediction."""
        return self.covered_mispredictions / self.forks if self.forks else 0.0

    def summary(self) -> str:
        return (
            f"{self.forks} forks ({self.fork_rate:.1%} of branches), "
            f"avoided {self.penalty_cycles_avoided} penalty cycles, "
            f"spent {self.fork_overhead_cycles} on wrong paths, "
            f"net {self.net_cycles_saved:+d} cycles"
        )


class MultipathModel:
    """Trace-driven multipath execution around TAGE + its estimator."""

    def __init__(
        self,
        predictor,
        estimator: TageConfidenceEstimator,
        policy: MultipathPolicy | None = None,
        resolution_latency: int = 8,
    ) -> None:
        if resolution_latency <= 0:
            raise ValueError(f"resolution_latency must be positive, got {resolution_latency}")
        self.predictor = predictor
        self.estimator = estimator
        self.policy = policy or MultipathPolicy()
        self.resolution_latency = resolution_latency

    def run(
        self,
        trace,
        backend: str = DEFAULT_BACKEND,
        materialization_dir=None,
    ) -> MultipathStats:
        """Process a trace and return multipath cost accounting.

        ``backend`` selects the engine that produces the per-branch
        observation stream; the policy replay itself is backend-invariant.
        """
        stream = observe_trace(
            trace, self.predictor, self.estimator,
            backend=backend, materialization_dir=materialization_dir,
        )
        return self.replay(stream)

    def replay(self, stream: ObservationStream) -> MultipathStats:
        """Replay the fork policy over a recorded observation stream."""
        stats = MultipathStats()
        policy = self.policy
        # Outstanding forks: each entry is the branch index at which the
        # fork resolves (branch-granular latency).
        outstanding: deque[int] = deque()
        levels = stream.levels
        mispredicted_flags = stream.mispredicted

        for index in range(len(stream)):
            while outstanding and outstanding[0] <= index:
                outstanding.popleft()

            level = levels[index]
            mispredicted = mispredicted_flags[index]

            stats.total_branches += 1
            if mispredicted:
                stats.mispredictions += 1

            wants_fork = policy.should_fork(level)
            can_fork = len(outstanding) < policy.max_outstanding_forks
            if wants_fork and can_fork:
                stats.forks += 1
                outstanding.append(index + self.resolution_latency)
                stats.fork_overhead_cycles += (
                    policy.fork_overhead_per_branch * self.resolution_latency
                )
                if mispredicted:
                    stats.covered_mispredictions += 1
                    stats.penalty_cycles_avoided += policy.mispredict_penalty
            else:
                if wants_fork:
                    stats.forks_denied += 1
                if mispredicted:
                    stats.penalty_cycles += policy.mispredict_penalty
        return stats
