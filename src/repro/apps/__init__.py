"""Confidence-estimation consumers.

The paper motivates confidence estimation with two classic usages (§1,
§2.1); this package provides executable models of both so the
three-level estimator can be exercised end to end:

* :mod:`repro.apps.fetch_gating` — speculation control / pipeline gating
  for energy saving (Manne et al. [9], Aragón et al. [2]): stop or
  throttle instruction fetch when too many low-confidence branches are
  in flight.
* :mod:`repro.apps.smt_policy` — SMT fetch policy (Luo et al. [7]):
  prefer the thread with the fewest unresolved low-confidence branches.

These models are *illustrative applications* of the reproduced
estimator, not paper experiments — the paper evaluates the estimator
itself, and Table 2/3 quality directly bounds what these consumers can
achieve.
"""

from repro.apps.fetch_gating import FetchGatingModel, GatingPolicy, GatingStats
from repro.apps.multipath import MultipathModel, MultipathPolicy, MultipathStats
from repro.apps.smt_policy import SmtFetchModel, SmtPolicy, SmtStats

__all__ = [
    "FetchGatingModel",
    "GatingPolicy",
    "GatingStats",
    "MultipathModel",
    "MultipathPolicy",
    "MultipathStats",
    "SmtFetchModel",
    "SmtPolicy",
    "SmtStats",
]
