"""Confidence-directed SMT fetch policy.

Luo et al. [7] (and many follow-ups) boost SMT throughput by steering
fetch bandwidth away from threads that are probably on the wrong path.
This model runs two (or more) threads, each a trace + TAGE predictor +
confidence estimator, and each cycle gives the fetch slot to a thread
chosen by the policy:

* ``round_robin`` — the confidence-oblivious baseline;
* ``confidence`` — fetch from the thread with the lowest
  confidence-weighted count of unresolved branches (ties broken round
  robin).

The figure of merit is the *wrong-path fetch fraction*: instructions
fetched behind a branch that will turn out mispredicted.  A good
confidence estimator lowers it without starving any thread.

Each thread's predictor only ever sees its own trace in its own order —
arbitration changes *when* a branch is fetched, never *what* the
predictor observes — so the per-thread confidence streams are
precomputed with :func:`repro.sim.observe.observe_trace` (on either
simulation backend) and the cycle-level arbitration replays over them.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from enum import Enum

from repro.confidence.classes import ConfidenceLevel
from repro.confidence.estimator import TageConfidenceEstimator
from repro.sim.backends import DEFAULT_BACKEND
from repro.sim.observe import ObservationStream, observe_trace

__all__ = ["SmtPolicy", "SmtStats", "SmtFetchModel"]


class SmtPolicy(Enum):
    """Fetch slot arbitration policy."""

    ROUND_ROBIN = "round-robin"
    CONFIDENCE = "confidence"


_LEVEL_WEIGHT = {
    ConfidenceLevel.LOW: 1.0,
    ConfidenceLevel.MEDIUM: 0.25,
    ConfidenceLevel.HIGH: 0.0,
}


@dataclass
class SmtStats:
    """Per-run statistics of the SMT fetch model."""

    cycles: int = 0
    fetched_instructions: int = 0
    wrong_path_instructions: int = 0
    per_thread_fetched: list[int] = field(default_factory=list)

    @property
    def wrong_path_fraction(self) -> float:
        if self.fetched_instructions == 0:
            return 0.0
        return self.wrong_path_instructions / self.fetched_instructions

    @property
    def fairness(self) -> float:
        """Min/max ratio of per-thread fetched instructions (1.0 = fair)."""
        if not self.per_thread_fetched or max(self.per_thread_fetched) == 0:
            return 1.0
        return min(self.per_thread_fetched) / max(self.per_thread_fetched)

    def summary(self) -> str:
        return (
            f"{self.cycles} cycles, {self.fetched_instructions} insts, "
            f"wrong-path {self.wrong_path_fraction:.1%}, fairness {self.fairness:.2f}"
        )


class _ThreadContext:
    """One hardware thread: a recorded observation stream + replay cursor."""

    __slots__ = ("insts", "stream", "levels", "cursor", "in_flight", "pressure")

    def __init__(self, insts, stream: ObservationStream) -> None:
        self.insts = insts
        self.stream = stream
        self.levels = stream.levels
        self.cursor = 0
        # (weight, mispredicted, resolve_cycle) per unresolved branch.
        # Branches resolve after a fixed number of *machine cycles*, not
        # thread-local fetches — otherwise an unscheduled thread's
        # pressure would freeze and the arbiter would starve it forever.
        self.in_flight: deque[tuple[float, bool, int]] = deque()
        self.pressure = 0.0

    @property
    def exhausted(self) -> bool:
        return self.cursor >= len(self.stream)

    def drain_resolved(self, now: int) -> None:
        while self.in_flight and self.in_flight[0][2] <= now:
            weight, _, _ = self.in_flight.popleft()
            self.pressure -= weight

    def has_unresolved_misprediction(self) -> bool:
        return any(entry[1] for entry in self.in_flight)


class SmtFetchModel:
    """Cycle-interleaved multi-thread fetch with confidence arbitration.

    Args:
        threads: (trace, predictor, estimator) triples.
        policy: arbitration policy.
        resolution_latency: branches in flight before resolution.
    """

    def __init__(
        self,
        threads: list[tuple[object, object, TageConfidenceEstimator]],
        policy: SmtPolicy = SmtPolicy.CONFIDENCE,
        resolution_latency: int = 8,
        max_cycles: int | None = None,
    ) -> None:
        if len(threads) < 2:
            raise ValueError(f"an SMT model needs >= 2 threads, got {len(threads)}")
        if resolution_latency <= 0:
            raise ValueError(f"resolution_latency must be positive, got {resolution_latency}")
        if max_cycles is not None and max_cycles <= 0:
            raise ValueError(f"max_cycles must be positive, got {max_cycles}")
        self.policy = policy
        self.resolution_latency = resolution_latency
        self.max_cycles = max_cycles
        self.threads = list(threads)
        self._threads: list[_ThreadContext] = []
        self._next_round_robin = 0

    def _choose_thread(self) -> _ThreadContext | None:
        candidates = [thread for thread in self._threads if not thread.exhausted]
        if not candidates:
            return None
        if self.policy is SmtPolicy.ROUND_ROBIN:
            for offset in range(len(self._threads)):
                index = (self._next_round_robin + offset) % len(self._threads)
                if not self._threads[index].exhausted:
                    self._next_round_robin = (index + 1) % len(self._threads)
                    return self._threads[index]
            return None
        # Confidence policy: lowest wrong-path pressure first; round-robin
        # among equals so no thread starves.
        best = min(candidates, key=lambda thread: thread.pressure)
        tied = [thread for thread in candidates if thread.pressure == best.pressure]
        if len(tied) > 1:
            for offset in range(len(self._threads)):
                index = (self._next_round_robin + offset) % len(self._threads)
                if self._threads[index] in tied:
                    self._next_round_robin = (index + 1) % len(self._threads)
                    return self._threads[index]
        return best

    def _step_thread(
        self, thread: _ThreadContext, stats: SmtStats, slot: int, now: int
    ) -> None:
        cursor = thread.cursor
        inst = thread.insts[cursor]
        level = thread.levels[cursor]
        mispredicted = thread.stream.mispredicted[cursor]
        thread.cursor = cursor + 1

        stats.fetched_instructions += inst
        stats.per_thread_fetched[slot] += inst
        if thread.has_unresolved_misprediction():
            stats.wrong_path_instructions += inst

        weight = _LEVEL_WEIGHT[level]
        thread.in_flight.append((weight, mispredicted, now + self.resolution_latency))
        thread.pressure += weight

    def observe_threads(
        self,
        backend: str = DEFAULT_BACKEND,
        materialization_dir=None,
    ) -> list[ObservationStream]:
        """Each thread's observation stream, in thread order.

        Streams are policy-invariant (arbitration changes *when* a
        branch is fetched, never what its predictor observes), so
        callers comparing policies over the same threads can compute
        them once and hand them to :meth:`replay` for every policy.
        """
        return [
            observe_trace(
                trace, predictor, estimator,
                backend=backend, materialization_dir=materialization_dir,
            )
            for trace, predictor, estimator in self.threads
        ]

    def run(
        self,
        backend: str = DEFAULT_BACKEND,
        materialization_dir=None,
    ) -> SmtStats:
        """Interleave the threads until every trace is exhausted or the
        cycle budget runs out.

        With a ``max_cycles`` budget the run measures *bandwidth
        allocation quality*: a policy that steers fetch toward probably-
        right-path threads fetches more useful instructions inside the
        same budget.  Without a budget every branch of every trace is
        eventually fetched, so only the interleaving (not the totals)
        differs between policies.

        ``backend`` selects the engine that produces each thread's
        observation stream; the arbitration replay is backend-invariant.
        """
        return self.replay(self.observe_threads(backend, materialization_dir))

    def replay(self, streams: list[ObservationStream]) -> SmtStats:
        """Replay the arbitration policy over recorded per-thread streams."""
        if len(streams) != len(self.threads):
            raise ValueError(
                f"need one stream per thread ({len(self.threads)}), "
                f"got {len(streams)}"
            )
        for slot, ((trace, _, _), stream) in enumerate(zip(self.threads, streams)):
            if len(stream) != len(trace.insts):
                raise ValueError(
                    f"thread {slot}: stream ({len(stream)} branches) does "
                    f"not match its trace ({len(trace.insts)} branches)"
                )
        self._threads = [
            _ThreadContext(trace.insts, stream)
            for (trace, _, _), stream in zip(self.threads, streams)
        ]
        self._next_round_robin = 0
        stats = SmtStats(per_thread_fetched=[0] * len(self._threads))
        while self.max_cycles is None or stats.cycles < self.max_cycles:
            for thread in self._threads:
                thread.drain_resolved(stats.cycles)
            thread = self._choose_thread()
            if thread is None:
                break
            stats.cycles += 1
            slot = self._threads.index(thread)
            self._step_thread(thread, stats, slot, stats.cycles)
        return stats
