"""Confidence-directed fetch gating (speculation control).

The model follows Manne et al.'s pipeline-gating idea [9]: the front end
counts unresolved low-confidence branches; when the count reaches a
threshold, instruction fetch is *gated* (stalled) until branches resolve.
A graded estimator (the paper's three levels) allows a finer policy: low
and medium confidence branches can carry different weights, as suggested
by Malik et al. [8].

Pipeline abstraction (documented, deliberately simple):

* the machine fetches ``fetch_width`` instructions per cycle;
* a branch resolves ``resolution_latency`` branches after prediction
  (a branch-granular stand-in for pipeline depth);
* instructions fetched between a mispredicted branch and its resolution
  are *wasted work* (they are squashed);
* cycles in which fetch is gated but the oldest in-flight branches were
  all correct are *lost opportunity*.

The interesting trade-off is ``wasted_fetch_avoided`` (energy win)
against ``useful_fetch_lost`` (performance loss) — the SPEC/PVN
combination §2.2 says gating needs.

Execution is a two-stage *replay*: the per-branch confidence signal is
produced once by :func:`repro.sim.observe.observe_trace` (on either
simulation backend — the gating decisions never feed back into the
predictor, so the observation stream is policy-independent), and the
gating policy then replays over the recorded (level, mispredicted)
pairs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.confidence.classes import ConfidenceLevel
from repro.confidence.estimator import TageConfidenceEstimator
from repro.sim.backends import DEFAULT_BACKEND
from repro.sim.observe import ObservationStream, observe_trace

__all__ = ["GatingPolicy", "GatingStats", "FetchGatingModel"]


@dataclass(frozen=True)
class GatingPolicy:
    """Gating decision parameters.

    Attributes:
        gate_threshold: gate fetch when the confidence-weighted count of
            unresolved branches reaches this value.
        low_weight / medium_weight / high_weight: per-level weights of an
            in-flight branch (Malik-style graded gating [8]); the classic
            binary policy is ``low=1, medium=0, high=0``.
        throttle_factor: fraction of fetch bandwidth kept while gated.
            0.0 is full pipeline gating (Manne et al. [9]); a value in
            (0, 1) is *selective throttling* (Aragón et al. [2]) — reduce
            the fetch rate instead of stopping, trading less energy
            saving for less performance risk.
    """

    gate_threshold: float = 2.0
    low_weight: float = 1.0
    medium_weight: float = 0.25
    high_weight: float = 0.0
    throttle_factor: float = 0.0

    def __post_init__(self) -> None:
        if self.gate_threshold <= 0:
            raise ValueError(f"gate_threshold must be positive, got {self.gate_threshold}")
        for label, weight in (
            ("low_weight", self.low_weight),
            ("medium_weight", self.medium_weight),
            ("high_weight", self.high_weight),
        ):
            if weight < 0:
                raise ValueError(f"{label} must be non-negative, got {weight}")
        if not 0.0 <= self.throttle_factor < 1.0:
            raise ValueError(
                f"throttle_factor must be in [0, 1), got {self.throttle_factor}"
            )

    def weight(self, level: ConfidenceLevel) -> float:
        if level is ConfidenceLevel.LOW:
            return self.low_weight
        if level is ConfidenceLevel.MEDIUM:
            return self.medium_weight
        return self.high_weight


@dataclass
class GatingStats:
    """Outcome of a fetch-gating run.

    All instruction counts are in fetched instructions.
    """

    total_branches: int = 0
    mispredicted_branches: int = 0
    gated_branches: int = 0
    fetched_instructions: int = 0
    wasted_instructions: int = 0
    wasted_fetch_avoided: int = 0
    useful_fetch_lost: int = 0

    @property
    def gating_rate(self) -> float:
        """Fraction of branch slots at which fetch was gated."""
        return self.gated_branches / self.total_branches if self.total_branches else 0.0

    @property
    def waste_reduction(self) -> float:
        """Fraction of would-be wasted fetch that gating avoided."""
        baseline_waste = self.wasted_instructions + self.wasted_fetch_avoided
        return self.wasted_fetch_avoided / baseline_waste if baseline_waste else 0.0

    @property
    def useful_loss_rate(self) -> float:
        """Useful fetch lost, as a fraction of all useful fetch."""
        useful = self.fetched_instructions - self.wasted_instructions
        baseline_useful = useful + self.useful_fetch_lost
        return self.useful_fetch_lost / baseline_useful if baseline_useful else 0.0

    def summary(self) -> str:
        return (
            f"gated {self.gating_rate:.1%} of slots, "
            f"avoided {self.waste_reduction:.1%} of wasted fetch, "
            f"lost {self.useful_loss_rate:.2%} of useful fetch"
        )


class FetchGatingModel:
    """Trace-driven fetch gating around a TAGE predictor + estimator.

    Args:
        predictor: a TAGE predictor.
        estimator: its confidence observer.
        policy: gating parameters.
        fetch_width: instructions fetched per branch slot.
        resolution_latency: branches in flight before resolution.
    """

    def __init__(
        self,
        predictor,
        estimator: TageConfidenceEstimator,
        policy: GatingPolicy | None = None,
        fetch_width: int = 4,
        resolution_latency: int = 8,
    ) -> None:
        if fetch_width <= 0:
            raise ValueError(f"fetch_width must be positive, got {fetch_width}")
        if resolution_latency <= 0:
            raise ValueError(f"resolution_latency must be positive, got {resolution_latency}")
        self.predictor = predictor
        self.estimator = estimator
        self.policy = policy or GatingPolicy()
        self.fetch_width = fetch_width
        self.resolution_latency = resolution_latency

    def run(
        self,
        trace,
        backend: str = DEFAULT_BACKEND,
        materialization_dir=None,
    ) -> GatingStats:
        """Process a trace and return gating statistics.

        ``backend`` selects the engine that produces the per-branch
        observation stream; the policy replay itself is backend-invariant.
        """
        stream = observe_trace(
            trace, self.predictor, self.estimator,
            backend=backend, materialization_dir=materialization_dir,
        )
        return self.replay(stream, trace.insts)

    def replay(self, stream: ObservationStream, insts) -> GatingStats:
        """Replay the gating policy over a recorded observation stream.

        ``insts`` must be the instruction column of the trace the stream
        was recorded from (one entry per branch).
        """
        if len(insts) != len(stream):
            raise ValueError(
                f"insts column ({len(insts)} branches) does not match the "
                f"observation stream ({len(stream)} branches)"
            )
        stats = GatingStats()
        policy = self.policy
        # Each in-flight element: (weight, mispredicted, inst_count).
        in_flight: deque[tuple[float, bool, int]] = deque()
        pressure = 0.0
        levels = stream.levels
        mispredicted_flags = stream.mispredicted

        for index, inst in enumerate(insts):
            level = levels[index]
            mispredicted = mispredicted_flags[index]

            gated = pressure >= policy.gate_threshold
            # One record covers `inst` instructions of fetch bandwidth.
            fetch_block = inst

            stats.total_branches += 1
            if mispredicted:
                stats.mispredicted_branches += 1
            behind_misprediction = any(entry[1] for entry in in_flight)
            if gated:
                stats.gated_branches += 1
                # Throttling keeps a fraction of the bandwidth; pipeline
                # gating (throttle_factor = 0) keeps none.
                kept = int(fetch_block * policy.throttle_factor)
                suppressed = fetch_block - kept
                stats.fetched_instructions += kept
                # Suppressed fetch behind an unresolved misprediction is
                # waste we avoided; otherwise it was useful bandwidth lost.
                if behind_misprediction:
                    stats.wasted_instructions += kept
                    stats.wasted_fetch_avoided += suppressed
                else:
                    stats.useful_fetch_lost += suppressed
            else:
                stats.fetched_instructions += fetch_block
                if behind_misprediction:
                    # Fetched behind an unresolved misprediction: squashed.
                    stats.wasted_instructions += fetch_block

            weight = policy.weight(level)
            in_flight.append((weight, mispredicted, inst))
            pressure += weight
            if len(in_flight) > self.resolution_latency:
                resolved_weight, _, _ = in_flight.popleft()
                pressure -= resolved_weight
        return stats
