"""Per-file analysis context: parsed AST plus the resolution tables rules need.

A :class:`SourceFile` wraps one Python file with everything the rules
share: the raw lines (rules like kernel parity scan text, not syntax),
the parsed tree, an import-alias table for resolving dotted call names
(``from datetime import datetime`` makes ``datetime.now`` resolve to
``datetime.datetime.now``), a line → enclosing-symbol index for stable
finding attribution, the inline ``# repro: allow[...]`` pragma index,
and a child → parent node map for context-sensitive checks (is this
clock read an operand of a delta expression?).

Everything derived is computed lazily and cached — a rule that never
asks for the parent map never pays for it.
"""

from __future__ import annotations

import ast
import re
from functools import cached_property
from pathlib import Path

__all__ = ["SourceFile", "dotted_name", "PRAGMA_RE"]

#: Inline suppression pragma: ``# repro: allow[RPR001]`` or
#: ``# repro: allow[RPR001,RPR003] — optional free-form reason``.
PRAGMA_RE = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_,\s]+)\]")


def dotted_name(node: ast.AST) -> str | None:
    """Syntactic dotted form of a Name/Attribute chain (``a.b.c``).

    Returns None for anything that is not a plain chain (calls,
    subscripts, literals as the base).
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class SourceFile:
    """One analyzed file; see the module docstring for what it carries."""

    def __init__(self, path: Path, root: Path):
        self.path = path
        self.root = root
        resolved = path.resolve()
        try:
            self.rel = resolved.relative_to(root.resolve()).as_posix()
        except ValueError:  # outside the root: keep the absolute path
            self.rel = resolved.as_posix()
        self.text = path.read_text(encoding="utf-8", errors="replace")
        self.lines = self.text.splitlines()
        self.tree: ast.Module | None = None
        self.parse_error: str | None = None
        try:
            self.tree = ast.parse(self.text, filename=self.rel)
        except SyntaxError as error:
            self.parse_error = (
                f"cannot parse: {error.msg} (line {error.lineno or 0})"
            )

    # -- import resolution --------------------------------------------------

    @cached_property
    def imports(self) -> dict[str, str]:
        """Local binding → absolute dotted module/object path.

        ``import a.b`` binds ``a`` → ``a`` (attribute chains then resolve
        naturally); ``import a.b as x`` binds ``x`` → ``a.b``;
        ``from m import n as o`` binds ``o`` → ``m.n``.  Relative imports
        are skipped — the deny-lists the rules match against are absolute
        stdlib/third-party names.
        """
        table: dict[str, str] = {}
        if self.tree is None:
            return table
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        table[alias.asname] = alias.name
                    else:
                        table[alias.name.split(".")[0]] = alias.name.split(".")[0]
            elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
                for alias in node.names:
                    table[alias.asname or alias.name] = f"{node.module}.{alias.name}"
        return table

    def resolve_name(self, node: ast.AST) -> str | None:
        """Absolute dotted name of a Name/Attribute chain, alias-expanded.

        ``open`` (a bare builtin) resolves to ``"open"``; unresolvable
        shapes (calls, subscripts at the base) resolve to None.
        """
        syntactic = dotted_name(node)
        if syntactic is None:
            return None
        head, _, rest = syntactic.partition(".")
        expanded = self.imports.get(head)
        if expanded is None:
            return syntactic
        return f"{expanded}.{rest}" if rest else expanded

    # -- enclosing-symbol index ---------------------------------------------

    @cached_property
    def _symbol_spans(self) -> list[tuple[int, int, str]]:
        spans: list[tuple[int, int, str]] = []

        def walk(node: ast.AST, prefix: str) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    qualname = f"{prefix}.{child.name}" if prefix else child.name
                    spans.append(
                        (child.lineno, child.end_lineno or child.lineno, qualname)
                    )
                    walk(child, qualname)
                else:
                    walk(child, prefix)

        if self.tree is not None:
            walk(self.tree, "")
        # Innermost span wins: sort outermost-first, overwrite on lookup.
        spans.sort(key=lambda span: (span[0], -span[1]))
        return spans

    def symbol_at(self, line: int) -> str:
        """Innermost enclosing ``Class.method`` chain at ``line``."""
        symbol = "<module>"
        for start, end, qualname in self._symbol_spans:
            if start <= line <= end:
                symbol = qualname
        return symbol

    # -- pragma index --------------------------------------------------------

    @cached_property
    def pragmas(self) -> dict[int, frozenset[str]]:
        """Line (1-based) → rule IDs allowed on that line."""
        table: dict[int, frozenset[str]] = {}
        for number, line in enumerate(self.lines, start=1):
            match = PRAGMA_RE.search(line)
            if match:
                rules = frozenset(
                    token.strip().upper()
                    for token in match.group(1).split(",")
                    if token.strip()
                )
                if rules:
                    table[number] = rules
        return table

    def is_allowed(self, rule: str, line: int) -> bool:
        """True when a pragma suppresses ``rule`` at ``line``.

        A pragma applies to its own physical line, or — when written as
        a standalone comment line — to the line directly below it.
        """
        if rule in self.pragmas.get(line, frozenset()):
            return True
        above = self.pragmas.get(line - 1, frozenset())
        if rule in above:
            text = self.lines[line - 2].strip() if line >= 2 else ""
            if text.startswith("#"):
                return True
        return False

    # -- parent map ----------------------------------------------------------

    @cached_property
    def parents(self) -> dict[ast.AST, ast.AST]:
        table: dict[ast.AST, ast.AST] = {}
        if self.tree is not None:
            for node in ast.walk(self.tree):
                for child in ast.iter_child_nodes(node):
                    table[child] = node
        return table

    def ancestors(self, node: ast.AST):
        """Parents of ``node``, innermost first, up to the module."""
        current = self.parents.get(node)
        while current is not None:
            yield current
            current = self.parents.get(current)
