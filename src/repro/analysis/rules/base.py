"""Rule plumbing: the base classes every analyzer plugs in through.

Two shapes of rule exist.  A :class:`FileRule` sees one
:class:`~repro.analysis.source.SourceFile` at a time — most invariants
are local.  A :class:`ProjectRule` sees the whole file set at once, for
cross-file contracts (spec classes defined in one module and consumed
in another, kernel parity regions split across translations).  Both
yield :class:`~repro.analysis.finding.Finding` objects; the engine owns
pragma suppression, baselining, ordering and reporting, so rules just
emit every violation they see.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.analysis.finding import Finding
from repro.analysis.source import SourceFile

__all__ = ["Rule", "FileRule", "ProjectRule", "scoped"]


class Rule:
    """Shared rule surface: stable ID, short name, one-line description."""

    rule_id: str = "RPR999"
    name: str = "unnamed"
    description: str = ""

    def check_project(self, files: list[SourceFile]) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, sf: SourceFile, line: int, col: int, message: str
    ) -> Finding:
        return Finding(
            rule=self.rule_id,
            path=sf.rel,
            line=line,
            col=col,
            message=message,
            symbol=sf.symbol_at(line),
        )


class FileRule(Rule):
    """A rule that inspects files independently."""

    def check_file(self, sf: SourceFile) -> Iterable[Finding]:
        raise NotImplementedError

    def check_project(self, files: list[SourceFile]) -> Iterator[Finding]:
        for sf in files:
            if sf.tree is not None:
                yield from self.check_file(sf)


class ProjectRule(Rule):
    """A rule that needs the whole file set (cross-file contracts)."""


def scoped(sf: SourceFile, prefixes: tuple[str, ...]) -> bool:
    """Is this file inside one of the scope prefixes?

    Matching is on path *segments* (``repro/sim/`` matches
    ``src/repro/sim/engine.py`` whether the analysis root is the repo or
    ``src/``), so rules scope to architectural layers, not to where the
    analysis was started from.
    """
    rel = f"/{sf.rel}"
    return any(f"/{prefix}" in rel for prefix in prefixes)
