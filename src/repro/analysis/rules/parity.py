"""RPR004 — kernel parity: marked twin regions must change together.

The fast backend ships the same inner loops in several translations —
the reference Python kernels (``fast/tage.py``, ``fast/gehl.py``), the
flat batched restatements, and an embedded-C mirror inside
``fast/compiled.py``.  The differential suites prove bit-identity *when
they run*; this rule moves the guard before the tests: editing one
translation without touching its twins fails ``repro lint`` instantly,
with a message naming every stale side.

Mechanics — the marker convention (documented in the kernel modules;
angle-bracket placeholders here keep these examples from reading as
real markers, which are matched on raw source lines):

.. code-block:: python

    # repro: parity-begin <group>/<side> fingerprint=<8 hex digits>
    ...kernel body...
    # repro: parity-end <group>/<side>

Because markers are matched on **raw source lines**, not syntax, the
same convention works as a Python comment and inside the embedded C
string (``/* repro: parity-begin <group>/<side> ... */``).

Every side of a group records the *same* fingerprint: the CRC-32 of all
sides' normalized contents (lines stripped of indentation and blanks,
sides concatenated in side-name order).  Changing any side therefore
invalidates the fingerprint recorded on **every** side — the author
must visit each twin, re-verify the translation (run the differential
suite!), and stamp the new value printed in the finding message.
Normalization makes pure reformatting (indentation, blank lines)
fingerprint-neutral; any token change is not.
"""

from __future__ import annotations

import re
import zlib
from dataclasses import dataclass
from typing import Iterator

from repro.analysis.finding import Finding
from repro.analysis.rules.base import ProjectRule
from repro.analysis.source import SourceFile

__all__ = ["ParityRule", "group_fingerprint"]

_MARKER_RE = re.compile(
    r"repro:\s*parity-(?P<kind>begin|end)\s+"
    r"(?P<group>[A-Za-z0-9_.\-]+)/(?P<side>[A-Za-z0-9_.\-]+)"
    r"(?:\s+fingerprint=(?P<fingerprint>[0-9a-f]{8}))?"
)


@dataclass
class _Region:
    group: str
    side: str
    fingerprint: str | None
    sf: SourceFile
    begin_line: int
    end_line: int | None = None

    @property
    def content(self) -> str:
        """Normalized region body: stripped lines, blanks dropped."""
        if self.end_line is None:
            return ""
        body = self.sf.lines[self.begin_line:self.end_line - 1]
        return "\n".join(line.strip() for line in body if line.strip())


def group_fingerprint(sides: dict[str, str]) -> str:
    """CRC-32 hex8 over ``side-name NUL content NUL`` in side-name order."""
    crc = 0
    for side in sorted(sides):
        crc = zlib.crc32(side.encode(), crc)
        crc = zlib.crc32(b"\x00", crc)
        crc = zlib.crc32(sides[side].encode(), crc)
        crc = zlib.crc32(b"\x00", crc)
    return format(crc & 0xFFFFFFFF, "08x")


class ParityRule(ProjectRule):
    rule_id = "RPR004"
    name = "kernel-parity"
    description = (
        "parity-marked kernel regions (pure/flat/C translations) must be "
        "updated together, re-stamping the shared fingerprint"
    )

    def check_project(self, files: list[SourceFile]) -> Iterator[Finding]:
        regions: list[_Region] = []
        for sf in files:
            scan = self._scan_file(sf, regions)
            yield from scan
        groups: dict[str, list[_Region]] = {}
        for region in regions:
            if region.end_line is not None:
                groups.setdefault(region.group, []).append(region)
        for group_name in sorted(groups):
            yield from self._check_group(group_name, groups[group_name])

    # -- marker scanning -----------------------------------------------------

    def _scan_file(
        self, sf: SourceFile, regions: list[_Region]
    ) -> Iterator[Finding]:
        open_regions: dict[tuple[str, str], _Region] = {}
        for number, line in enumerate(sf.lines, start=1):
            match = _MARKER_RE.search(line)
            if match is None:
                continue
            key = (match["group"], match["side"])
            label = f"{match['group']}/{match['side']}"
            if match["kind"] == "begin":
                if key in open_regions:
                    yield self.finding(
                        sf, number, 0,
                        f"parity-begin {label} repeated before its "
                        "parity-end (markers cannot nest)",
                    )
                    continue
                if match["fingerprint"] is None:
                    yield self.finding(
                        sf, number, 0,
                        f"parity-begin {label} is missing its "
                        "fingerprint=<8 hex> field",
                    )
                region = _Region(
                    group=match["group"], side=match["side"],
                    fingerprint=match["fingerprint"], sf=sf, begin_line=number,
                )
                open_regions[key] = region
                regions.append(region)
            else:
                region = open_regions.pop(key, None)
                if region is None:
                    yield self.finding(
                        sf, number, 0,
                        f"parity-end {label} without a matching parity-begin",
                    )
                else:
                    region.end_line = number
        for region in open_regions.values():
            yield self.finding(
                sf, region.begin_line, 0,
                f"parity-begin {region.group}/{region.side} is never closed "
                "by a parity-end",
            )

    # -- group fingerprint check ---------------------------------------------

    def _check_group(
        self, group_name: str, regions: list[_Region]
    ) -> Iterator[Finding]:
        by_side: dict[str, _Region] = {}
        for region in regions:
            if region.side in by_side:
                other = by_side[region.side]
                yield self.finding(
                    region.sf, region.begin_line, 0,
                    f"parity side {group_name}/{region.side} is defined "
                    f"twice (also at {other.sf.rel}:{other.begin_line})",
                )
                continue
            by_side[region.side] = region
        if len(by_side) < 2:
            only = next(iter(by_side.values()), None)
            if only is not None:
                yield self.finding(
                    only.sf, only.begin_line, 0,
                    f"parity group '{group_name}' has a single side "
                    f"('{only.side}') — parity needs at least two "
                    "translations to compare",
                )
            return
        expected = group_fingerprint(
            {side: region.content for side, region in by_side.items()}
        )
        for side in sorted(by_side):
            region = by_side[side]
            if region.fingerprint is None or region.fingerprint == expected:
                continue
            yield self.finding(
                region.sf, region.begin_line, 0,
                f"parity group '{group_name}' changed: side '{side}' records "
                f"fingerprint={region.fingerprint} but the group's content "
                f"fingerprint is {expected} — update every translation "
                "together, re-run the differential suite, then stamp "
                f"fingerprint={expected} on all "
                f"{len(by_side)} sides",
            )
