"""RPR003 — fork/async safety in the sweep and serving layers.

Two process models meet in this codebase and each has a way to corrupt
state silently:

* **Fork/spawn workers** (``repro/sweep``): broker and worker processes
  import the same modules.  Module-level mutable state mutated from
  functions is per-process after fork — mutations in a worker are
  invisible to the broker (and vice versa), and a respawned worker
  starts from the import-time value.  Code that *looks* like shared
  accounting quietly isn't; anything resembling it gets flagged.
* **The asyncio serving path** (``repro/serve``): one event loop serves
  every tenant, so a single blocking call (``time.sleep``, synchronous
  file I/O, ``subprocess``) inside an ``async def`` stalls *all*
  tenants, breaking the admission-control latency contract.  Shared
  module-level mutable state is also flagged here — tenant isolation
  requires all mutable state to hang off per-tenant/per-shard objects
  (``serve/state.py``'s ``TenantSession``), never off the module.

Read-only module-level tables (built once at import, never mutated in a
function) are fine and common; the rule only fires on *mutation* from
function scope — ``global`` rebinding, mutating method calls
(``.append``/``.update``/...), subscript stores and deletes.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.finding import Finding
from repro.analysis.rules.base import FileRule, scoped
from repro.analysis.source import SourceFile

__all__ = ["ConcurrencyRule"]

#: Layers with forked workers / the multi-tenant event loop.
PROCESS_SCOPES = ("repro/sweep/", "repro/serve/")

#: Constructors whose results are module-level mutable containers.
_MUTABLE_FACTORIES = {
    "dict", "list", "set", "bytearray",
    "collections.defaultdict", "collections.deque", "collections.Counter",
    "collections.OrderedDict",
}

#: Method calls that mutate their receiver in place.
_MUTATOR_METHODS = {
    "append", "extend", "insert", "add", "update", "setdefault", "pop",
    "popitem", "remove", "discard", "clear", "appendleft", "extendleft",
}

#: Calls that block the event loop when awaited code runs them.
_BLOCKING_CALLS = {
    "time.sleep": "sleeps the whole event loop; use asyncio.sleep",
    "subprocess.run": "blocks the event loop; use asyncio.create_subprocess_exec",
    "subprocess.call": "blocks the event loop; use asyncio.create_subprocess_exec",
    "subprocess.check_call": (
        "blocks the event loop; use asyncio.create_subprocess_exec"
    ),
    "subprocess.check_output": (
        "blocks the event loop; use asyncio.create_subprocess_exec"
    ),
    "subprocess.Popen": "blocks the event loop; use asyncio.create_subprocess_exec",
    "os.system": "blocks the event loop; use asyncio.create_subprocess_shell",
    "open": "synchronous file I/O stalls every tenant; use a thread executor",
}

#: Blocking Path / file-object style methods (matched by attribute name).
_BLOCKING_METHODS = {"read_text", "write_text", "read_bytes", "write_bytes"}


def _is_mutable_literal(node: ast.expr, sf: SourceFile) -> bool:
    if isinstance(node, (ast.Dict, ast.List, ast.Set,
                         ast.DictComp, ast.ListComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return sf.resolve_name(node.func) in _MUTABLE_FACTORIES
    return False


class ConcurrencyRule(FileRule):
    rule_id = "RPR003"
    name = "fork-async-safety"
    description = (
        "no mutation of module-level mutable state in forked/multi-tenant "
        "layers; no blocking calls inside async def"
    )

    def check_file(self, sf: SourceFile) -> Iterable[Finding]:
        if scoped(sf, PROCESS_SCOPES):
            yield from self._check_module_state(sf)
        yield from self._check_async_blocking(sf)

    # -- module-level mutable state ------------------------------------------

    def _check_module_state(self, sf: SourceFile) -> Iterator[Finding]:
        module_mutables: dict[str, int] = {}
        for node in sf.tree.body:
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            if value is None or not _is_mutable_literal(value, sf):
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    module_mutables[target.id] = node.lineno
        if not module_mutables:
            return
        for fn in ast.walk(sf.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield from self._check_function_mutations(sf, fn, module_mutables)

    def _check_function_mutations(
        self, sf: SourceFile, fn: ast.AST, module_mutables: dict[str, int]
    ) -> Iterator[Finding]:
        # A plain (non-`global`) assignment to the name anywhere in the
        # function makes it local — reads and mutations then touch the
        # local, not the module state.
        globals_declared: set[str] = set()
        locals_bound: set[str] = set()
        for node in ast.walk(fn):
            if isinstance(node, ast.Global):
                globals_declared.update(node.names)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        locals_bound.add(target.id)

        def is_module_ref(name: str) -> bool:
            if name not in module_mutables:
                return False
            return name in globals_declared or name not in locals_bound

        for node in ast.walk(fn):
            name: str | None = None
            verb = ""
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.attr in _MUTATOR_METHODS
            ):
                name, verb = node.func.value.id, f".{node.func.attr}()"
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Subscript) and isinstance(
                        target.value, ast.Name
                    ):
                        name, verb = target.value.id, "[...] ="
                    elif (
                        isinstance(target, ast.Name)
                        and target.id in globals_declared
                    ):
                        name, verb = target.id, "="
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if isinstance(target, ast.Subscript) and isinstance(
                        target.value, ast.Name
                    ):
                        name, verb = target.value.id, "del [...]"
            if name and is_module_ref(name):
                yield self.finding(
                    sf, node.lineno, node.col_offset,
                    f"module-level mutable '{name}' is mutated ({verb}) "
                    f"inside '{fn.name}' — in forked workers / the multi-"
                    "tenant server this state silently diverges per "
                    "process; move it onto an owning object",
                )

    # -- blocking calls inside async def -------------------------------------

    def _check_async_blocking(self, sf: SourceFile) -> Iterator[Finding]:
        for fn in ast.walk(sf.tree):
            if not isinstance(fn, ast.AsyncFunctionDef):
                continue
            for node in self._walk_same_function(fn):
                if not isinstance(node, ast.Call):
                    continue
                qualified = sf.resolve_name(node.func)
                reason = _BLOCKING_CALLS.get(qualified or "")
                if reason is None and isinstance(node.func, ast.Attribute):
                    if node.func.attr in _BLOCKING_METHODS:
                        qualified = f"...{node.func.attr}"
                        reason = (
                            "synchronous file I/O stalls every tenant; "
                            "use a thread executor"
                        )
                if reason is not None:
                    yield self.finding(
                        sf, node.lineno, node.col_offset,
                        f"blocking call `{qualified}()` inside "
                        f"`async def {fn.name}` {reason}",
                    )

    @staticmethod
    def _walk_same_function(fn: ast.AsyncFunctionDef) -> Iterator[ast.AST]:
        """Walk ``fn`` without descending into nested function defs —
        those are visited (and judged) on their own."""
        stack: list[ast.AST] = list(ast.iter_child_nodes(fn))
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            stack.extend(ast.iter_child_nodes(node))
