"""Rule registry: every analyzer the engine can run, keyed by stable ID.

Adding a rule means writing a :class:`~repro.analysis.rules.base.FileRule`
or :class:`~repro.analysis.rules.base.ProjectRule` subclass and listing
it in :data:`RULES`; the engine, CLI (``--rules``), reporters and
baseline handle it from there.  IDs are append-only — a retired rule's
ID is never reused, so old baselines and pragmas keep meaning what they
meant.
"""

from __future__ import annotations

from repro.analysis.rules.base import FileRule, ProjectRule, Rule
from repro.analysis.rules.concurrency import ConcurrencyRule
from repro.analysis.rules.determinism import DeterminismRule
from repro.analysis.rules.hygiene import HygieneRule
from repro.analysis.rules.parity import ParityRule
from repro.analysis.rules.spec_hash import SpecHashRule

__all__ = [
    "RULES",
    "FileRule",
    "ProjectRule",
    "Rule",
    "get_rules",
    "rule_ids",
]

#: Every registered rule class, in rule-ID order.
RULES: tuple[type[Rule], ...] = (
    DeterminismRule,
    SpecHashRule,
    ConcurrencyRule,
    ParityRule,
    HygieneRule,
)


def rule_ids() -> tuple[str, ...]:
    return tuple(rule.rule_id for rule in RULES)


def get_rules(ids: tuple[str, ...] | list[str] | None = None) -> list[Rule]:
    """Instantiate the selected rules (all of them when ``ids`` is None)."""
    if ids is None:
        return [rule() for rule in RULES]
    wanted = {token.strip().upper() for token in ids}
    unknown = wanted - set(rule_ids())
    if unknown:
        raise ValueError(
            f"unknown rule ID(s) {sorted(unknown)}; "
            f"available: {', '.join(rule_ids())}"
        )
    return [rule() for rule in RULES if rule.rule_id in wanted]
