"""RPR002 — spec-hash hygiene: a spec's hash must cover what execution reads.

Every cacheable unit of work in this project is keyed by the SHA-256 of
a spec's canonical ``as_dict()`` form (``JobSpec``/``ExperimentSpec``
drive the on-disk sweep cache, ``SessionSpec`` is a tenant's wire
identity).  The contract has two failure modes, both silent:

* a **hash-excluded but result-affecting field** — a dataclass field
  left out of ``as_dict()`` that kernels or grid expansion read:
  two different configurations collide on one cache entry and the
  second run is served the first run's bytes;
* a **dead hashed key** — an ``as_dict()`` entry that corresponds to no
  field (a rename or removal that forgot the dict): the hash churns on
  nothing, or worse, raises only at hash time.

This rule cross-checks every ``*Spec`` dataclass that defines
``as_dict`` against its fields, and then scans the whole analyzed file
set for reads of excluded fields through parameters annotated with the
spec type (``def execute_job(job: JobSpec)`` ... ``job.backend``).
Deliberate execution-only fields (``backend``, ``materialization_dir`` —
excluded *because* results are backend-invariant) carry an inline
``allow[RPR002]`` pragma on the field definition; a pragma there also
sanctions the downstream reads, keeping the policy in exactly one place.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from repro.analysis.finding import Finding
from repro.analysis.rules.base import ProjectRule
from repro.analysis.source import SourceFile

__all__ = ["SpecHashRule"]


@dataclass
class _SpecClass:
    """One ``*Spec`` dataclass with an analyzable ``as_dict``."""

    name: str
    sf: SourceFile
    fields: dict[str, int] = field(default_factory=dict)  # name -> lineno
    hashed_keys: dict[str, ast.expr] = field(default_factory=dict)
    has_spec_hash: bool = False
    dict_lineno: int = 0

    @property
    def excluded(self) -> dict[str, int]:
        return {
            name: line
            for name, line in self.fields.items()
            if name not in self.hashed_keys
        }


def _is_dataclass(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = target.attr if isinstance(target, ast.Attribute) else (
            target.id if isinstance(target, ast.Name) else ""
        )
        if name == "dataclass":
            return True
    return False


def _references_self(node: ast.expr) -> bool:
    for child in ast.walk(node):
        if isinstance(child, ast.Name) and child.id == "self":
            return True
    return False


def _annotation_name(annotation: ast.expr | None) -> str | None:
    """Class name out of a parameter annotation (``JobSpec``,
    ``"JobSpec"``, ``sweep.JobSpec``, ``JobSpec | None``)."""
    if annotation is None:
        return None
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        return annotation.value.split(".")[-1].strip()
    if isinstance(annotation, ast.Name):
        return annotation.id
    if isinstance(annotation, ast.Attribute):
        return annotation.attr
    if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
        return _annotation_name(annotation.left)
    return None


class SpecHashRule(ProjectRule):
    rule_id = "RPR002"
    name = "spec-hash-hygiene"
    description = (
        "*Spec dataclass fields must be hashed by as_dict() or explicitly "
        "allowed as execution-only; as_dict() keys must map to fields"
    )

    def check_project(self, files: list[SourceFile]) -> Iterator[Finding]:
        classes = [
            spec
            for sf in files
            if sf.tree is not None
            for spec in self._collect_spec_classes(sf)
        ]
        for spec in classes:
            yield from self._check_class(spec)
        yield from self._check_consumer_reads(files, classes)

    # -- collection ----------------------------------------------------------

    def _collect_spec_classes(self, sf: SourceFile) -> Iterator[_SpecClass]:
        for node in ast.walk(sf.tree):
            if not (
                isinstance(node, ast.ClassDef)
                and node.name.endswith("Spec")
                and _is_dataclass(node)
            ):
                continue
            spec = _SpecClass(name=node.name, sf=sf)
            for statement in node.body:
                if isinstance(statement, ast.AnnAssign) and isinstance(
                    statement.target, ast.Name
                ):
                    annotation = ast.dump(statement.annotation)
                    if "ClassVar" in annotation:
                        continue
                    spec.fields[statement.target.id] = statement.lineno
                elif isinstance(
                    statement, ast.FunctionDef
                ) and statement.name == "spec_hash":
                    spec.has_spec_hash = True
                elif isinstance(
                    statement, ast.FunctionDef
                ) and statement.name == "as_dict":
                    self._read_as_dict(spec, statement)
            if spec.hashed_keys or spec.dict_lineno:
                yield spec

    @staticmethod
    def _read_as_dict(spec: _SpecClass, fn: ast.FunctionDef) -> None:
        for node in ast.walk(fn):
            if isinstance(node, ast.Return) and isinstance(node.value, ast.Dict):
                literal = node.value
                if all(
                    isinstance(key, ast.Constant) and isinstance(key.value, str)
                    for key in literal.keys
                ):
                    spec.dict_lineno = literal.lineno
                    spec.hashed_keys = {
                        key.value: value
                        for key, value in zip(literal.keys, literal.values)
                    }
                return

    # -- per-class checks ----------------------------------------------------

    def _check_class(self, spec: _SpecClass) -> Iterator[Finding]:
        hash_word = "spec_hash()" if spec.has_spec_hash else "as_dict()"
        for name, line in sorted(spec.excluded.items()):
            yield self.finding(
                spec.sf, line, 0,
                f"field '{name}' of {spec.name} is excluded from "
                f"{hash_word} — state that can affect results must be "
                "hashed; mark deliberate execution-only plumbing with "
                "allow[RPR002] on this line",
            )
        for key, value in sorted(spec.hashed_keys.items()):
            if key in spec.fields or _references_self(value):
                continue
            yield self.finding(
                spec.sf, value.lineno, value.col_offset,
                f"{spec.name}.as_dict() emits key '{key}' that maps to no "
                "field and reads no instance state — a dead hashed key "
                "(stale rename?)",
            )

    # -- cross-file consumer reads -------------------------------------------

    def _check_consumer_reads(
        self, files: list[SourceFile], classes: list[_SpecClass]
    ) -> Iterator[Finding]:
        unguarded: dict[str, dict[str, int]] = {}
        for spec in classes:
            bad = {
                name: line
                for name, line in spec.excluded.items()
                if not spec.sf.is_allowed(self.rule_id, line)
            }
            if bad:
                unguarded.setdefault(spec.name, {}).update(bad)
        if not unguarded:
            return
        for sf in files:
            if sf.tree is None:
                continue
            for fn in ast.walk(sf.tree):
                if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                params: dict[str, str] = {}
                for arg in [*fn.args.posonlyargs, *fn.args.args,
                            *fn.args.kwonlyargs]:
                    class_name = _annotation_name(arg.annotation)
                    if class_name in unguarded and arg.arg != "self":
                        params[arg.arg] = class_name
                if not params:
                    continue
                for node in ast.walk(fn):
                    if not (
                        isinstance(node, ast.Attribute)
                        and isinstance(node.value, ast.Name)
                        and node.value.id in params
                    ):
                        continue
                    class_name = params[node.value.id]
                    if node.attr in unguarded[class_name]:
                        yield self.finding(
                            sf, node.lineno, node.col_offset,
                            f"reads {class_name}.{node.attr}, which is "
                            "excluded from the spec hash without an "
                            "allow[RPR002] pragma — two specs differing "
                            "only in this field share one cache entry",
                        )
