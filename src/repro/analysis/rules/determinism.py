"""RPR001 — determinism: no ambient nondeterminism in result-producing code.

The reproduction's headline guarantee is byte-identical re-runs: the
same spec hash must always map to the same result bytes, across
processes, machines and Python hash seeds.  Inside the result-producing
layers (``repro/sim``, ``repro/sweep``, ``repro/traces/sources``,
``repro/artifacts`` and the ``tools/`` gates built on them) this rule
flags every construct whose value depends on ambient state:

* **wall-clock reads** — ``time.time``, ``datetime.now`` and friends;
* **ambient entropy** — ``os.urandom``, ``uuid.uuid1/uuid4``,
  ``secrets.*``;
* **unseeded RNGs** — the module-level ``random.*`` functions (process
  global state), ``random.Random()`` / ``numpy.random.default_rng()``
  without a seed, and the legacy ``numpy.random.*`` global functions;
* **hash-seed-dependent iteration** — iterating a ``set`` (or feeding
  one to an order-sensitive consumer such as ``list``/``join``/a dict
  comprehension) without ``sorted``; order-insensitive reducers
  (``sum``/``min``/``max``/``any``/``all``/``len``) are fine;
* **filesystem enumeration order** — ``os.listdir``/``glob``/
  ``iterdir``/``scandir`` results consumed without ``sorted``.

Timing *telemetry* is legitimate even in result-producing code — the
monotonic clocks (``perf_counter``/``monotonic``/``process_time``) are
allowlisted **by sink, not by file**: a read is fine when it flows into
a recognizably telemetry-shaped sink (an ``elapsed``/``start``/
``deadline``-style name, a delta/comparison expression), and flagged
when it escapes toward anything else.  Wall-clock reads have no allowed
sink here: a timestamp in a result payload breaks byte-identity by
construction and needs an explicit ``allow[RPR001]`` pragma.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Iterator

from repro.analysis.finding import Finding
from repro.analysis.rules.base import FileRule, scoped
from repro.analysis.source import SourceFile

__all__ = ["DeterminismRule"]

#: Layers whose output feeds result payloads, caches or reports.
RESULT_SCOPES = (
    "repro/sim/",
    "repro/sweep/",
    "repro/traces/sources/",
    "repro/artifacts/",
    "tools/",
)

_WALL_CLOCK = {
    "time.time": "wall-clock read",
    "time.time_ns": "wall-clock read",
    "time.ctime": "wall-clock read",
    "time.localtime": "wall-clock read",
    "time.gmtime": "wall-clock read",
    "time.strftime": "wall-clock formatting",
    "datetime.datetime.now": "wall-clock read",
    "datetime.datetime.utcnow": "wall-clock read",
    "datetime.datetime.today": "wall-clock read",
    "datetime.date.today": "wall-clock read",
}

_ENTROPY = {
    "os.urandom": "ambient OS entropy",
    "uuid.uuid1": "host/time-derived UUID",
    "uuid.uuid4": "random UUID",
    "secrets.token_bytes": "ambient OS entropy",
    "secrets.token_hex": "ambient OS entropy",
    "secrets.token_urlsafe": "ambient OS entropy",
    "secrets.randbits": "ambient OS entropy",
    "secrets.randbelow": "ambient OS entropy",
    "secrets.choice": "ambient OS entropy",
}

#: Module-level functions of the process-global ``random`` RNG.
_GLOBAL_RANDOM_FNS = {
    "random", "randint", "randrange", "uniform", "triangular", "choice",
    "choices", "shuffle", "sample", "gauss", "normalvariate", "betavariate",
    "expovariate", "lognormvariate", "vonmisesvariate", "paretovariate",
    "weibullvariate", "getrandbits", "randbytes",
}

#: Legacy numpy global-state RNG functions.
_NUMPY_GLOBAL_RANDOM = {
    "rand", "randn", "randint", "random", "random_sample", "choice",
    "shuffle", "permutation", "normal", "uniform", "standard_normal", "bytes",
}

_MONOTONIC = {
    "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns",
}

#: Sink names that mark a monotonic-clock read as timing telemetry.
_TELEMETRY_RE = re.compile(
    r"(elapsed|duration|start|began|begin|end|deadline|timeout|t0|t1|now|"
    r"beat|tick|wall|took|timer|clock|stamp|latency|budget)",
    re.IGNORECASE,
)

#: Unordered filesystem enumeration: absolute names and bare method names.
_FS_ENUM_QUALIFIED = {"os.listdir", "os.scandir", "glob.glob", "glob.iglob"}
_FS_ENUM_METHODS = {"iterdir", "scandir"}

#: Order-insensitive consumers of an iterable.
_ORDER_FREE_REDUCERS = {
    "sorted", "sum", "min", "max", "any", "all", "len", "set", "frozenset",
}
#: Order-sensitive consumers that materialize iteration order.
_ORDER_SENSITIVE_CALLS = {"list", "tuple", "enumerate", "iter", "next"}


def _is_set_expr(node: ast.AST, sf: SourceFile, set_locals: set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return sf.resolve_name(node.func) in ("set", "frozenset")
    if isinstance(node, ast.Name):
        return node.id in set_locals
    return False


class DeterminismRule(FileRule):
    rule_id = "RPR001"
    name = "determinism"
    description = (
        "wall-clock, ambient entropy, unseeded RNGs and hash-ordering-"
        "dependent iteration must not reach result-producing code"
    )

    def check_file(self, sf: SourceFile) -> Iterable[Finding]:
        if not scoped(sf, RESULT_SCOPES):
            return
        set_locals = self._set_typed_names(sf)
        for node in ast.walk(sf.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(sf, node, set_locals)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                if _is_set_expr(node.iter, sf, set_locals):
                    yield self.finding(
                        sf, node.iter.lineno, node.iter.col_offset,
                        "iteration order of a set depends on the process "
                        "hash seed; iterate sorted(...) or keep a tuple",
                    )
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
                yield from self._check_comprehension(sf, node, set_locals)

    # -- call-level checks ---------------------------------------------------

    def _check_call(
        self, sf: SourceFile, node: ast.Call, set_locals: set[str]
    ) -> Iterator[Finding]:
        qualified = sf.resolve_name(node.func)
        if qualified is None:
            return
        if qualified in _WALL_CLOCK:
            yield self.finding(
                sf, node.lineno, node.col_offset,
                f"{_WALL_CLOCK[qualified]} `{qualified}()` in result-"
                "producing code breaks byte-identical re-runs; derive "
                "timestamps outside the result path",
            )
            return
        if qualified in _ENTROPY:
            yield self.finding(
                sf, node.lineno, node.col_offset,
                f"{_ENTROPY[qualified]} `{qualified}()` in result-"
                "producing code breaks reproducibility; derive identity "
                "from the spec hash or a seeded RNG",
            )
            return
        yield from self._check_random(sf, node, qualified)
        yield from self._check_monotonic(sf, node, qualified)
        yield from self._check_fs_enum(sf, node, qualified)
        yield from self._check_order_sensitive_call(sf, node, qualified, set_locals)

    def _check_random(
        self, sf: SourceFile, node: ast.Call, qualified: str
    ) -> Iterator[Finding]:
        head, _, tail = qualified.rpartition(".")
        if head == "random" and tail in _GLOBAL_RANDOM_FNS:
            yield self.finding(
                sf, node.lineno, node.col_offset,
                f"`{qualified}()` draws from the process-global RNG; use a "
                "seeded `random.Random(seed)` instance derived from the spec",
            )
        elif qualified == "random.Random" and not node.args and not node.keywords:
            yield self.finding(
                sf, node.lineno, node.col_offset,
                "`random.Random()` without a seed is nondeterministic; "
                "derive the seed from the spec",
            )
        elif head == "numpy.random" and tail in _NUMPY_GLOBAL_RANDOM:
            yield self.finding(
                sf, node.lineno, node.col_offset,
                f"`{qualified}()` uses numpy's global RNG state; use a "
                "seeded `numpy.random.default_rng(seed)` generator",
            )
        elif qualified in ("numpy.random.default_rng", "numpy.random.Generator"):
            if not node.args and not node.keywords:
                yield self.finding(
                    sf, node.lineno, node.col_offset,
                    f"`{qualified}()` without a seed is nondeterministic; "
                    "derive the seed from the spec",
                )

    def _check_monotonic(
        self, sf: SourceFile, node: ast.Call, qualified: str
    ) -> Iterator[Finding]:
        if qualified not in _MONOTONIC:
            return
        if self._is_telemetry_sink(sf, node):
            return
        yield self.finding(
            sf, node.lineno, node.col_offset,
            f"monotonic clock `{qualified}()` flows into an unrecognized "
            "sink; timing telemetry must land in an elapsed/duration-style "
            "field (allowlisted by sink, not by file)",
        )

    def _is_telemetry_sink(self, sf: SourceFile, node: ast.Call) -> bool:
        """Does this clock read feed a recognizable telemetry sink?

        Deltas and comparisons (``now() - started``, ``now() < deadline``)
        are telemetry by shape; otherwise the nearest enclosing statement
        must bind a telemetry-named target or keyword.
        """
        child: ast.AST = node
        for parent in sf.ancestors(node):
            if isinstance(parent, (ast.BinOp, ast.Compare)):
                return True
            if isinstance(parent, ast.keyword):
                return bool(parent.arg and _TELEMETRY_RE.search(parent.arg))
            if isinstance(parent, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    parent.targets
                    if isinstance(parent, ast.Assign)
                    else [parent.target]
                )
                return any(self._target_is_telemetry(t) for t in targets)
            if isinstance(parent, ast.Call) and child is not parent.func:
                name = sf.resolve_name(parent.func) or ""
                return bool(_TELEMETRY_RE.search(name))
            if isinstance(parent, ast.stmt):
                return False
            child = parent
        return False

    @staticmethod
    def _target_is_telemetry(target: ast.AST) -> bool:
        if isinstance(target, ast.Name):
            return bool(_TELEMETRY_RE.search(target.id))
        if isinstance(target, ast.Attribute):
            return bool(_TELEMETRY_RE.search(target.attr))
        if isinstance(target, (ast.Tuple, ast.List)):
            return any(
                DeterminismRule._target_is_telemetry(item) for item in target.elts
            )
        return False

    # -- filesystem enumeration ----------------------------------------------

    def _check_fs_enum(
        self, sf: SourceFile, node: ast.Call, qualified: str
    ) -> Iterator[Finding]:
        is_enum = qualified in _FS_ENUM_QUALIFIED or (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _FS_ENUM_METHODS
        )
        if not is_enum:
            return
        for parent in sf.ancestors(node):
            if isinstance(parent, ast.Call):
                if sf.resolve_name(parent.func) == "sorted":
                    return
            if isinstance(parent, ast.stmt):
                break
        yield self.finding(
            sf, node.lineno, node.col_offset,
            f"filesystem enumeration `{qualified}()` has platform-dependent "
            "order; wrap it in sorted(...)",
        )

    # -- set-iteration checks ------------------------------------------------

    @staticmethod
    def _set_typed_names(sf: SourceFile) -> set[str]:
        """Names assigned *only* set expressions anywhere in the file.

        Deliberately simple flow-insensitive inference: a name counts as
        set-typed when every plain assignment to it is a set expression.
        """
        assigned_set: set[str] = set()
        assigned_other: set[str] = set()
        for node in ast.walk(sf.tree):
            if isinstance(node, ast.Assign) and node.value is not None:
                targets = [t for t in node.targets if isinstance(t, ast.Name)]
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets = [node.target] if isinstance(node.target, ast.Name) else []
            else:
                continue
            is_set = _is_set_expr(node.value, sf, set())
            for target in targets:
                (assigned_set if is_set else assigned_other).add(target.id)
        return assigned_set - assigned_other

    def _check_comprehension(
        self, sf: SourceFile, node: ast.AST, set_locals: set[str]
    ) -> Iterator[Finding]:
        for generator in node.generators:
            if not _is_set_expr(generator.iter, sf, set_locals):
                continue
            if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
                parent = sf.parents.get(node)
                if (
                    isinstance(parent, ast.Call)
                    and len(parent.args) == 1
                    and parent.args[0] is node
                    and sf.resolve_name(parent.func) in _ORDER_FREE_REDUCERS
                ):
                    continue
            elif isinstance(node, ast.SetComp):
                continue
            yield self.finding(
                sf, generator.iter.lineno, generator.iter.col_offset,
                "comprehension over a set materializes hash-seed-dependent "
                "order; iterate sorted(...) or feed an order-insensitive "
                "reducer",
            )

    def _check_order_sensitive_call(
        self, sf: SourceFile, node: ast.Call, qualified: str,
        set_locals: set[str],
    ) -> Iterator[Finding]:
        if qualified not in _ORDER_SENSITIVE_CALLS or len(node.args) != 1:
            return
        if _is_set_expr(node.args[0], sf, set_locals):
            yield self.finding(
                sf, node.lineno, node.col_offset,
                f"`{qualified}()` over a set materializes hash-seed-"
                "dependent order; wrap the set in sorted(...)",
            )
