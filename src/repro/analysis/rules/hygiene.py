"""RPR005 — warning/exception hygiene on the fallback paths.

The fallback machinery is this project's safety net: when the fast
backend cannot run a cell, when a compiled provider is missing, when a
cache entry is corrupt, the code *must* degrade loudly — a typed,
filterable warning — and never swallow the evidence.  Three patterns
defeat that design and are flagged:

* **bare ``except:``** — catches ``KeyboardInterrupt``/``SystemExit``
  too, so a Ctrl-C during a sweep can be eaten by an error path and the
  journal checkpoint never written;
* **category-less ``warnings.warn("...")``** — defaults to
  ``UserWarning``, which makes targeted filtering (and the test suite's
  ``FastBackendFallbackWarning`` accounting) impossible.  Passing an
  exception *instance* (``warnings.warn(SomeWarning(...))``) is fine;
* **blanket suppression** — ``simplefilter("ignore")`` /
  ``filterwarnings("ignore")`` without a ``category=`` silences every
  warning in the process, including the fallback warnings other layers
  rely on observing; suppress the one category you mean.

Swallowing a caught warning category silently (``except SomeWarning:
pass``) is flagged for the same reason: a warning that was important
enough to catch is important enough to handle or re-raise.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.finding import Finding
from repro.analysis.rules.base import FileRule
from repro.analysis.source import SourceFile

__all__ = ["HygieneRule"]


def _is_warning_name(name: str | None) -> bool:
    return bool(name) and name.split(".")[-1].endswith("Warning")


def _swallows(body: list[ast.stmt]) -> bool:
    return all(isinstance(node, (ast.Pass, ast.Continue)) for node in body)


class HygieneRule(FileRule):
    rule_id = "RPR005"
    name = "warning-hygiene"
    description = (
        "no bare except, no category-less warnings.warn, no blanket "
        "warning suppression"
    )

    def check_file(self, sf: SourceFile) -> Iterable[Finding]:
        for node in ast.walk(sf.tree):
            if isinstance(node, ast.ExceptHandler):
                yield from self._check_handler(sf, node)
            elif isinstance(node, ast.Call):
                yield from self._check_call(sf, node)

    def _check_handler(
        self, sf: SourceFile, node: ast.ExceptHandler
    ) -> Iterator[Finding]:
        if node.type is None:
            yield self.finding(
                sf, node.lineno, node.col_offset,
                "bare `except:` also catches KeyboardInterrupt/SystemExit, "
                "breaking the checkpoint-on-interrupt contract; name the "
                "exception types",
            )
            return
        caught = [node.type] if not isinstance(node.type, ast.Tuple) \
            else list(node.type.elts)
        for expr in caught:
            name = sf.resolve_name(expr)
            if _is_warning_name(name) and _swallows(node.body):
                yield self.finding(
                    sf, node.lineno, node.col_offset,
                    f"caught warning category `{name}` is silently "
                    "swallowed; handle it or re-raise — the fallback "
                    "contract requires degradation to stay observable",
                )

    def _check_call(self, sf: SourceFile, node: ast.Call) -> Iterator[Finding]:
        qualified = sf.resolve_name(node.func)
        if qualified == "warnings.warn":
            yield from self._check_warn(sf, node)
        elif qualified in ("warnings.simplefilter", "warnings.filterwarnings"):
            yield from self._check_filter(sf, node, qualified)

    def _check_warn(self, sf: SourceFile, node: ast.Call) -> Iterator[Finding]:
        if len(node.args) >= 2:
            return
        if any(kw.arg == "category" for kw in node.keywords):
            return
        if node.args and isinstance(node.args[0], ast.Call):
            if _is_warning_name(sf.resolve_name(node.args[0].func)):
                return  # warnings.warn(SomeWarning("...")) carries its category
        yield self.finding(
            sf, node.lineno, node.col_offset,
            "warnings.warn(...) without an explicit category defaults to "
            "UserWarning and cannot be filtered or asserted on; pass the "
            "typed warning class",
        )

    def _check_filter(
        self, sf: SourceFile, node: ast.Call, qualified: str
    ) -> Iterator[Finding]:
        action = node.args[0] if node.args else None
        if not (
            isinstance(action, ast.Constant) and action.value == "ignore"
        ):
            return
        # simplefilter(action, category=...) — category is 2nd positional;
        # filterwarnings(action, message="", category=...) — 3rd positional.
        category_index = 1 if qualified.endswith("simplefilter") else 2
        if len(node.args) > category_index:
            return
        if any(kw.arg == "category" for kw in node.keywords):
            return
        yield self.finding(
            sf, node.lineno, node.col_offset,
            f"{qualified}('ignore') without a category silences every "
            "warning in the process, including the fallback warnings other "
            "layers assert on; restrict it with category=",
        )
