"""Static invariant analysis for the reproduction's correctness contracts.

Every guarantee the project makes — bit-identical backends, byte-identical
``repro paper`` re-runs, crash-recoverable sweeps that resume to the same
bytes — rests on invariants that code review alone cannot police at scale.
This package encodes them as an AST-based analysis engine with pluggable
rules, exposed as the ``repro lint`` CLI subcommand and run in CI on every
change:

* **RPR001 determinism** — wall-clock reads, ambient entropy, unseeded
  global RNGs and hash-seed-dependent set iteration must not reach
  result-producing code (:mod:`repro.analysis.rules.determinism`).
* **RPR002 spec-hash hygiene** — every field of a ``*Spec`` dataclass is
  either part of its canonical ``as_dict()``/``spec_hash()`` form or
  explicitly allowed as execution-only plumbing
  (:mod:`repro.analysis.rules.spec_hash`).
* **RPR003 fork/async safety** — no mutation of module-level mutable
  state in the sweep/serve layers, no blocking calls inside ``async def``
  (:mod:`repro.analysis.rules.concurrency`).
* **RPR004 kernel parity** — marked kernel regions that exist in several
  translations (pure Python, flat batch, embedded C) must change
  together (:mod:`repro.analysis.rules.parity`).
* **RPR005 warning/exception hygiene** — no bare ``except``, no
  category-less ``warnings.warn``, no blanket warning suppression
  (:mod:`repro.analysis.rules.hygiene`).

Findings are suppressed inline with ``# repro: allow[RPR001]`` pragmas
(same line or the comment line directly above) or grandfathered through a
committed JSON baseline (:mod:`repro.analysis.baseline`).  Reporters
render text, JSON and SARIF 2.1.0 (:mod:`repro.analysis.report`).
"""

from repro.analysis.baseline import Baseline
from repro.analysis.engine import LintReport, collect_files, run_lint
from repro.analysis.finding import PARSE_ERROR_RULE_ID, Finding
from repro.analysis.report import render_json, render_sarif, render_text
from repro.analysis.rules import RULES, get_rules, rule_ids
from repro.analysis.source import SourceFile

__all__ = [
    "Baseline",
    "Finding",
    "LintReport",
    "PARSE_ERROR_RULE_ID",
    "RULES",
    "SourceFile",
    "collect_files",
    "get_rules",
    "render_json",
    "render_sarif",
    "render_text",
    "rule_ids",
    "run_lint",
]
