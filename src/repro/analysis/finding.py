"""The unit of analyzer output: one :class:`Finding` per violated invariant.

A finding is pure data — rule ID, location, enclosing symbol, message —
ordered deterministically (path, line, column, rule) so reports are
byte-stable across runs and machines.  The ``symbol`` (dotted enclosing
class/function chain, ``<module>`` at top level) exists so baseline
entries survive unrelated line drift: the committed baseline keys on
``(rule, path, symbol, message)``, never on line numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Finding", "PARSE_ERROR_RULE_ID"]

#: Pseudo-rule for files the engine cannot parse; reported as a finding
#: so it shows up in every output format, but escalated to exit code 2
#: by the CLI (a syntax error means the run was incomplete, not clean).
PARSE_ERROR_RULE_ID = "RPR000"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    Attributes:
        rule: stable rule ID (``RPR001`` ... ``RPR005``; ``RPR000`` for
            parse failures).
        path: file path relative to the analysis root, POSIX separators.
        line: 1-based line of the violation.
        col: 0-based column (matching :mod:`ast` conventions).
        message: human-readable description, stable for baseline keying —
            no absolute paths, timestamps or memory addresses.
        symbol: innermost enclosing ``Class.method`` chain, or
            ``<module>``.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    symbol: str = "<module>"

    @property
    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule, self.message)

    @property
    def baseline_key(self) -> tuple[str, str, str, str]:
        """Line-number-free identity used by the committed baseline."""
        return (self.rule, self.path, self.symbol, self.message)

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "symbol": self.symbol,
            "message": self.message,
        }

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col + 1}: "
            f"{self.rule} {self.message} [{self.symbol}]"
        )
