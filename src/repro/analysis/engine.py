"""The analysis engine: file collection, rule execution, suppression.

:func:`run_lint` is the single entry point the CLI, CI job and tests
share.  It collects ``*.py`` files under the given paths (sorted, so
reports are byte-stable), parses each once into a shared
:class:`~repro.analysis.source.SourceFile`, runs every selected rule,
then applies the two suppression layers in order: inline
``# repro: allow[RPRnnn]`` pragmas first (the policy lives next to the
code it sanctions), the committed baseline second (transitional debt
only).  Files that fail to parse surface as ``RPR000`` findings — an
unparseable file means the run was incomplete, never clean, and the CLI
escalates it to exit code 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.baseline import Baseline
from repro.analysis.finding import PARSE_ERROR_RULE_ID, Finding
from repro.analysis.rules import get_rules
from repro.analysis.rules.base import Rule
from repro.analysis.source import SourceFile

__all__ = ["LintReport", "collect_files", "run_lint"]

_SKIP_DIRS = {"__pycache__", ".git", ".repro-cache"}


@dataclass
class LintReport:
    """Everything one lint run produced, pre-sorted and pre-partitioned."""

    findings: list[Finding] = field(default_factory=list)  # active (failing)
    baselined: list[Finding] = field(default_factory=list)
    pragma_suppressed: list[Finding] = field(default_factory=list)
    stale_baseline: list[dict] = field(default_factory=list)
    files_analyzed: int = 0

    @property
    def parse_errors(self) -> list[Finding]:
        return [f for f in self.findings if f.rule == PARSE_ERROR_RULE_ID]

    @property
    def clean(self) -> bool:
        return not self.findings

    @property
    def exit_code(self) -> int:
        """0 clean, 1 findings, 2 incomplete (parse failures)."""
        if self.parse_errors:
            return 2
        return 0 if self.clean else 1


def collect_files(paths: list[Path]) -> list[Path]:
    """Python files under the given files/directories, sorted, deduped."""
    collected: set[Path] = set()
    for path in paths:
        if path.is_file():
            collected.add(path.resolve())
        elif path.is_dir():
            for candidate in path.rglob("*.py"):
                parts = set(candidate.parts)
                if parts & _SKIP_DIRS or any(
                    part.startswith(".") and part not in (".", "..")
                    for part in candidate.parts
                ):
                    continue
                collected.add(candidate.resolve())
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return sorted(collected)


def run_lint(
    paths: list[Path],
    root: Path,
    rules: list[Rule] | None = None,
    baseline: Baseline | None = None,
) -> LintReport:
    """Run the selected rules over ``paths``; see the module docstring."""
    root = root.resolve()
    rules = get_rules() if rules is None else rules
    sources = [SourceFile(path, root) for path in collect_files(paths)]

    raw: list[Finding] = []
    for sf in sources:
        if sf.parse_error is not None:
            raw.append(
                Finding(
                    rule=PARSE_ERROR_RULE_ID, path=sf.rel, line=1, col=0,
                    message=sf.parse_error,
                )
            )
    parsed = [sf for sf in sources if sf.tree is not None]
    for rule in rules:
        raw.extend(rule.check_project(parsed))

    by_rel = {sf.rel: sf for sf in sources}
    active: list[Finding] = []
    pragma_suppressed: list[Finding] = []
    for finding in raw:
        sf = by_rel.get(finding.path)
        if sf is not None and sf.is_allowed(finding.rule, finding.line):
            pragma_suppressed.append(finding)
        else:
            active.append(finding)

    active.sort(key=lambda f: f.sort_key)
    if baseline is not None:
        active, baselined, stale = baseline.apply(active)
    else:
        baselined, stale = [], []

    return LintReport(
        findings=active,
        baselined=baselined,
        pragma_suppressed=sorted(pragma_suppressed, key=lambda f: f.sort_key),
        stale_baseline=stale,
        files_analyzed=len(sources),
    )
