"""Committed baseline of grandfathered findings.

The baseline lets ``repro lint`` be adopted on a codebase with known,
deliberately-deferred findings without turning the CI gate off: entries
in the committed JSON file suppress matching findings, everything else
fails the build.  Keys are line-number-free (``rule, path, symbol,
message``) so unrelated edits above a grandfathered site do not
invalidate the entry; a count caps how many identical findings one
entry may absorb, so a *new* duplicate of a baselined problem still
fails.

Entries that match nothing are reported as *stale* — the finding was
fixed, so the entry must be deleted (``--update-baseline`` rewrites the
file from the current findings).  The project keeps this file near
empty by policy: genuine findings are fixed, deliberate ones carry an
inline ``allow[...]`` pragma with a reason; the baseline is only for
transitional debt.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.finding import Finding

__all__ = ["Baseline", "BaselineError"]

_FORMAT_VERSION = 1
_ENTRY_KEYS = ("rule", "path", "symbol", "message")


class BaselineError(ValueError):
    """The baseline file exists but cannot be used (corrupt/unknown)."""


@dataclass
class Baseline:
    """In-memory form: baseline key → remaining suppression budget."""

    budgets: dict[tuple[str, str, str, str], int] = field(default_factory=dict)
    path: Path | None = None

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        if not path.exists():
            return cls(path=path)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            raise BaselineError(f"cannot read baseline {path}: {error}") from error
        if not isinstance(payload, dict) or payload.get("version") != _FORMAT_VERSION:
            raise BaselineError(
                f"baseline {path} has unsupported version "
                f"{payload.get('version') if isinstance(payload, dict) else '?'}"
            )
        budgets: dict[tuple[str, str, str, str], int] = {}
        for entry in payload.get("entries", ()):
            if not isinstance(entry, dict) or not all(
                isinstance(entry.get(k), str) for k in _ENTRY_KEYS
            ):
                raise BaselineError(f"baseline {path} has a malformed entry: {entry}")
            key = tuple(entry[k] for k in _ENTRY_KEYS)
            count = entry.get("count", 1)
            if not isinstance(count, int) or count < 1:
                raise BaselineError(
                    f"baseline {path}: entry count must be a positive int, "
                    f"got {count!r}"
                )
            budgets[key] = budgets.get(key, 0) + count
        return cls(budgets=budgets, path=path)

    def apply(
        self, findings: list[Finding]
    ) -> tuple[list[Finding], list[Finding], list[dict]]:
        """Split findings into (active, baselined); report stale entries.

        Stale entries are returned as plain dicts (the file's own shape)
        so reporters can print exactly what to delete.
        """
        remaining = dict(self.budgets)
        active: list[Finding] = []
        baselined: list[Finding] = []
        for finding in findings:
            key = finding.baseline_key
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                baselined.append(finding)
            else:
                active.append(finding)
        stale = [
            dict(zip(_ENTRY_KEYS, key), count=count)
            for key, count in sorted(remaining.items())
            if count > 0
        ]
        return active, baselined, stale

    @staticmethod
    def serialize(findings: list[Finding]) -> str:
        """Canonical baseline JSON for the given findings (sorted, keyed)."""
        counts: dict[tuple[str, str, str, str], int] = {}
        for finding in findings:
            key = finding.baseline_key
            counts[key] = counts.get(key, 0) + 1
        entries = [
            dict(zip(_ENTRY_KEYS, key), count=count)
            for key, count in sorted(counts.items())
        ]
        return json.dumps(
            {"version": _FORMAT_VERSION, "entries": entries}, indent=2
        ) + "\n"
