"""Reporters: render one :class:`~repro.analysis.engine.LintReport`.

Three formats, all deterministic (findings arrive pre-sorted, JSON is
emitted with sorted keys, nothing embeds timestamps or absolute paths):

* **text** — human-oriented ``path:line:col: RULE message`` lines plus a
  summary, for terminals and CI logs;
* **json** — the full report as plain data, uploaded as a CI artifact
  and consumed by tooling;
* **sarif** — SARIF 2.1.0, the interchange format code-scanning UIs
  ingest; one run, one result per finding, rule metadata attached to
  the driver.
"""

from __future__ import annotations

import json

from repro.analysis.engine import LintReport
from repro.analysis.rules import RULES

__all__ = ["render_text", "render_json", "render_sarif", "REPORT_FORMATS"]

REPORT_FORMATS = ("text", "json", "sarif")

_TOOL_NAME = "repro-lint"
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_text(report: LintReport) -> str:
    lines = [finding.render() for finding in report.findings]
    if report.stale_baseline:
        lines.append("")
        lines.append("stale baseline entries (fixed findings — delete them):")
        for entry in report.stale_baseline:
            lines.append(
                f"  {entry['rule']} {entry['path']} [{entry['symbol']}] "
                f"x{entry['count']}: {entry['message']}"
            )
    lines.append("")
    lines.append(
        f"{len(report.findings)} finding(s) in {report.files_analyzed} "
        f"file(s) ({len(report.baselined)} baselined, "
        f"{len(report.pragma_suppressed)} pragma-suppressed"
        + (
            f", {len(report.stale_baseline)} stale baseline entr"
            + ("y" if len(report.stale_baseline) == 1 else "ies")
            if report.stale_baseline
            else ""
        )
        + ")"
    )
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    payload = {
        "version": 1,
        "tool": _TOOL_NAME,
        "findings": [finding.as_dict() for finding in report.findings],
        "baselined": [finding.as_dict() for finding in report.baselined],
        "pragma_suppressed": [
            finding.as_dict() for finding in report.pragma_suppressed
        ],
        "stale_baseline": report.stale_baseline,
        "summary": {
            "files_analyzed": report.files_analyzed,
            "n_findings": len(report.findings),
            "n_baselined": len(report.baselined),
            "n_pragma_suppressed": len(report.pragma_suppressed),
            "n_stale_baseline": len(report.stale_baseline),
            "exit_code": report.exit_code,
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def render_sarif(report: LintReport) -> str:
    rules = [
        {
            "id": rule.rule_id,
            "name": rule.name,
            "shortDescription": {"text": rule.description},
        }
        for rule in RULES
    ]
    results = [
        {
            "ruleId": finding.rule,
            "level": "error",
            "message": {"text": f"{finding.message} [{finding.symbol}]"},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": finding.path},
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
        }
        for finding in report.findings
    ]
    payload = {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": _TOOL_NAME,
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
