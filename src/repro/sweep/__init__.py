"""Experiment sweep orchestration.

The scaling backbone of the reproduction: a declarative
:class:`ExperimentSpec` (predictor × confidence estimator × trace grid)
expands into independent jobs, executes across a ``multiprocessing``
worker pool with deterministic per-job seeding, memoizes completed runs
in an on-disk :class:`ResultCache` keyed by spec hash, and aggregates
into a tidy :class:`ResultTable` that the paper benches, the CLI
``sweep`` command and the examples all consume.

Typical use::

    from repro.sweep import (
        EstimatorSpec, ExperimentSpec, PredictorSpec, ResultCache, run_sweep,
    )

    spec = ExperimentSpec(
        name="demo",
        predictors=(PredictorSpec.of("tage", size="64K"),
                    PredictorSpec.of("gshare")),
        estimators=(EstimatorSpec.of("tage"), EstimatorSpec.of("jrs")),
        traces=("INT-1", "MM-1", "SERV-1"),
        n_branches=16_000,
    )
    run = run_sweep(spec, workers=4, cache=ResultCache())
    print(run.table.to_tsv())

Sweeps are fault tolerant and resumable: the broker journals every
completion to an append-only run journal, retries transient failures
with backoff, quarantines deterministic ones, and
:func:`resume_sweep` (``repro sweep --resume <run-id>``) continues an
interrupted run bit-identically from the journal plus cache.

Module map: :mod:`~repro.sweep.spec` (declarative specs + hashing),
:mod:`~repro.sweep.grid` (expansion + compatibility filtering),
:mod:`~repro.sweep.executor` (single-job entry point + sweep API),
:mod:`~repro.sweep.broker` (dispatch, supervision, retry, quarantine),
:mod:`~repro.sweep.worker` (worker process loop + heartbeats),
:mod:`~repro.sweep.journal` (crash-safe run journal),
:mod:`~repro.sweep.faults` (deterministic fault injection),
:mod:`~repro.sweep.cache` (on-disk memoization),
:mod:`~repro.sweep.result` (tidy aggregation).
"""

from repro.sweep.broker import Broker, BrokerConfig, QuarantinedJob, SweepInterrupted
from repro.sweep.cache import ResultCache, default_cache_dir
from repro.sweep.executor import (
    SweepRun,
    default_journal_dir,
    default_workers,
    execute_job,
    resume_sweep,
    run_sweep,
)
from repro.sweep.faults import (
    FAULTS_ENV,
    FaultInjector,
    PoisonedJobError,
    TransientJobError,
)
from repro.sweep.journal import (
    JournalError,
    JournalState,
    RunJournal,
    journal_path,
    replay_journal,
)
from repro.sweep.grid import GridExpansion, expand
from repro.sweep.result import JobResult, ResultTable
from repro.sweep.spec import (
    ESTIMATOR_KINDS,
    PREDICTOR_KINDS,
    EstimatorSpec,
    ExperimentSpec,
    JobSpec,
    PredictorSpec,
)

__all__ = [
    "PREDICTOR_KINDS",
    "ESTIMATOR_KINDS",
    "PredictorSpec",
    "EstimatorSpec",
    "ExperimentSpec",
    "JobSpec",
    "GridExpansion",
    "expand",
    "execute_job",
    "run_sweep",
    "resume_sweep",
    "SweepRun",
    "default_workers",
    "default_journal_dir",
    "Broker",
    "BrokerConfig",
    "QuarantinedJob",
    "SweepInterrupted",
    "FAULTS_ENV",
    "FaultInjector",
    "TransientJobError",
    "PoisonedJobError",
    "JournalError",
    "JournalState",
    "RunJournal",
    "journal_path",
    "replay_journal",
    "ResultCache",
    "default_cache_dir",
    "JobResult",
    "ResultTable",
]
