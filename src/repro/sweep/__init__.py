"""Experiment sweep orchestration.

The scaling backbone of the reproduction: a declarative
:class:`ExperimentSpec` (predictor × confidence estimator × trace grid)
expands into independent jobs, executes across a ``multiprocessing``
worker pool with deterministic per-job seeding, memoizes completed runs
in an on-disk :class:`ResultCache` keyed by spec hash, and aggregates
into a tidy :class:`ResultTable` that the paper benches, the CLI
``sweep`` command and the examples all consume.

Typical use::

    from repro.sweep import (
        EstimatorSpec, ExperimentSpec, PredictorSpec, ResultCache, run_sweep,
    )

    spec = ExperimentSpec(
        name="demo",
        predictors=(PredictorSpec.of("tage", size="64K"),
                    PredictorSpec.of("gshare")),
        estimators=(EstimatorSpec.of("tage"), EstimatorSpec.of("jrs")),
        traces=("INT-1", "MM-1", "SERV-1"),
        n_branches=16_000,
    )
    run = run_sweep(spec, workers=4, cache=ResultCache())
    print(run.table.to_tsv())

Module map: :mod:`~repro.sweep.spec` (declarative specs + hashing),
:mod:`~repro.sweep.grid` (expansion + compatibility filtering),
:mod:`~repro.sweep.executor` (single-job entry point + pool),
:mod:`~repro.sweep.cache` (on-disk memoization),
:mod:`~repro.sweep.result` (tidy aggregation).
"""

from repro.sweep.cache import ResultCache, default_cache_dir
from repro.sweep.executor import SweepRun, default_workers, execute_job, run_sweep
from repro.sweep.grid import GridExpansion, expand
from repro.sweep.result import JobResult, ResultTable
from repro.sweep.spec import (
    ESTIMATOR_KINDS,
    PREDICTOR_KINDS,
    EstimatorSpec,
    ExperimentSpec,
    JobSpec,
    PredictorSpec,
)

__all__ = [
    "PREDICTOR_KINDS",
    "ESTIMATOR_KINDS",
    "PredictorSpec",
    "EstimatorSpec",
    "ExperimentSpec",
    "JobSpec",
    "GridExpansion",
    "expand",
    "execute_job",
    "run_sweep",
    "SweepRun",
    "default_workers",
    "ResultCache",
    "default_cache_dir",
    "JobResult",
    "ResultTable",
]
