"""Grid expansion: :class:`ExperimentSpec` → concrete job list.

The cross product predictors × estimators × traces is filtered through
:meth:`EstimatorSpec.compatible_with` — e.g. the storage-free TAGE
observation cannot attach to a gshare baseline, and perceptron/O-GEHL
self-confidence needs a sum-based predictor.  Incompatible pairs are
skipped (the default) or rejected loudly, and :func:`expand` reports
both so no sweep silently shrinks.

Expansion order is deterministic (trace-major, then predictor, then
estimator) so job indices, cache keys and aggregate row order are stable
across runs and worker counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sweep.spec import EstimatorSpec, ExperimentSpec, JobSpec, PredictorSpec

__all__ = ["GridExpansion", "expand", "compatible_pairs"]


def compatible_pairs(
    spec: ExperimentSpec,
) -> tuple[list[tuple[PredictorSpec, EstimatorSpec]], list[tuple[PredictorSpec, EstimatorSpec]]]:
    """Split the predictor × estimator product into (valid, invalid)."""
    valid: list[tuple[PredictorSpec, EstimatorSpec]] = []
    invalid: list[tuple[PredictorSpec, EstimatorSpec]] = []
    for predictor in spec.predictors:
        for estimator in spec.estimators:
            if estimator.compatible_with(predictor):
                valid.append((predictor, estimator))
            else:
                invalid.append((predictor, estimator))
    return valid, invalid


@dataclass(frozen=True)
class GridExpansion:
    """The expanded grid plus the accounting of what was dropped."""

    spec: ExperimentSpec
    jobs: tuple[JobSpec, ...]
    skipped: tuple[tuple[PredictorSpec, EstimatorSpec], ...]

    @property
    def n_jobs(self) -> int:
        return len(self.jobs)

    def describe(self) -> str:
        """One-line summary for logs and the CLI."""
        text = (
            f"{self.spec.name}: {len(self.jobs)} jobs = "
            f"{len(self.spec.traces)} traces x "
            f"{len(self.jobs) // max(1, len(self.spec.traces))} pairs"
        )
        if self.skipped:
            dropped = ", ".join(
                f"{p.label}x{e.label}" for p, e in self.skipped
            )
            text += f" (skipped incompatible: {dropped})"
        return text


def expand(spec: ExperimentSpec) -> GridExpansion:
    """Expand a spec into runnable :class:`JobSpec` cells.

    Raises:
        ValueError: when no compatible pair exists, or when
            ``spec.skip_incompatible`` is False and any pair is invalid.
    """
    valid, invalid = compatible_pairs(spec)
    if invalid and not spec.skip_incompatible:
        pairs = ", ".join(f"{p.label}x{e.label}" for p, e in invalid)
        raise ValueError(f"incompatible predictor/estimator pairs: {pairs}")
    if not valid:
        raise ValueError(
            f"spec {spec.name!r} has no compatible predictor/estimator pair"
        )
    if spec.adaptive and any(estimator.kind != "tage" for _, estimator in valid):
        raise ValueError("adaptive sweeps require the TAGE observation estimator")

    jobs = [
        JobSpec(
            predictor=predictor,
            estimator=estimator,
            trace=trace,
            n_branches=spec.n_branches,
            warmup_branches=spec.warmup_branches,
            adaptive=spec.adaptive,
            target_mkp=spec.target_mkp,
            seed=spec.derive_job_seed(predictor, estimator, trace),
            backend=spec.backend,
        )
        for trace in spec.traces
        for predictor, estimator in valid
    ]
    return GridExpansion(spec=spec, jobs=tuple(jobs), skipped=tuple(invalid))
