"""Sweep execution: single-job entry point + fault-tolerant fan-out.

:func:`execute_job` is the picklable unit of work: it takes one
:class:`~repro.sweep.spec.JobSpec` (pure data), regenerates the named
trace inside the worker process (trace synthesis is deterministic and
memoized per process, so nothing large crosses the pipe), instantiates
the predictor/estimator pair and runs the matching engine loop on the
job's backend — vectorized batch execution for ``backend="fast"`` cells
the fast engine supports, the per-branch reference loop (after a
:class:`~repro.sim.backends.FastBackendFallbackWarning`) for the rest.

:func:`run_sweep` drives a whole :class:`ExperimentSpec`: expand the
grid, serve cache hits, execute the misses through the supervised
:class:`~repro.sweep.broker.Broker` (journaled, heartbeat-monitored
worker processes with retry/backoff, quarantine and straggler
re-dispatch — see :mod:`repro.sweep.broker`), and aggregate into a
:class:`~repro.sweep.result.ResultTable` in stable grid order.  Because
every job carries its own deterministic seed (or relies on the
components' fixed built-in seeds), results are bit-for-bit identical for
any worker count — and for any retry/crash/re-dispatch history.

When a cache is attached, every run also appends a crash-safe
:class:`~repro.sweep.journal.RunJournal` under ``<cache root>/runs``;
:func:`resume_sweep` (the ``repro sweep --resume <run-id>`` entry)
rebuilds the spec from that journal and re-runs *only* the unfinished
jobs, serving completed ones bit-identically from the cache.

Two fast-backend refinements happen before fan-out: unsupported fast
cells are probed once per distinct (predictor, estimator, adaptive)
cell and downgraded to the reference engine with a single
:class:`FastBackendFallbackWarning` (instead of one warning per job per
worker), and fast jobs are pointed at a shared on-disk plane
materialization directory (``<cache root>/planes`` by default) so every
(trace, TAGE-geometry) index/tag plane set is computed once per grid —
not once per job — and memmapped by later jobs and later runs.  Every
cell the default grids can express — all predictor kinds, all estimator
kinds, adaptive §6.2 included — is inside the fast family, so a
``backend="fast"`` sweep over them emits no warnings at all; the probe
exists for subclassed components and >62-bit history windows.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import uuid
import warnings
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable

from repro.confidence.adaptive import AdaptiveSaturationController
from repro.confidence.estimator import TageConfidenceEstimator
from repro.confidence.jrs import EnhancedJrsEstimator, JrsEstimator
from repro.confidence.self_confidence import SelfConfidenceEstimator
from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.gshare import GsharePredictor
from repro.predictors.local import LocalHistoryPredictor
from repro.predictors.ogehl import OgehlPredictor
from repro.predictors.perceptron import PerceptronPredictor
from repro.predictors.tage.config import AUTOMATON_PROBABILISTIC
from repro.sim.backends import (
    Capability,
    Cell,
    FastBackendFallbackWarning,
    get_backend,
    load_fast_engine,
)
from repro.sim.engine import simulate, simulate_binary
from repro.sim.runner import build_predictor, get_trace
from repro.sweep.broker import (
    Broker,
    BrokerConfig,
    QuarantinedJob,
    SweepInterrupted,
)
from repro.sweep.cache import ResultCache
from repro.sweep.faults import FAULTS_ENV
from repro.sweep.grid import GridExpansion, expand
from repro.sweep.journal import (
    JournalError,
    RunJournal,
    journal_path,
    replay_journal,
)
from repro.sweep.result import JobResult, ResultTable
from repro.sweep.spec import (
    EstimatorSpec,
    ExperimentSpec,
    JobSpec,
    LockstepBatch,
    PredictorSpec,
)

__all__ = [
    "execute_job",
    "execute_batch",
    "execute_work",
    "plan_lockstep",
    "run_sweep",
    "resume_sweep",
    "SweepRun",
    "SweepInterrupted",
    "QuarantinedJob",
    "LOCKSTEP_ENV",
    "LOCKSTEP_MAX_BATCH",
    "default_workers",
    "default_journal_dir",
    "build_cell_predictor",
    "build_cell_binary_estimator",
]

#: Opt-out switch for lockstep batching (``0``/``off``/``false`` disable).
LOCKSTEP_ENV = "REPRO_LOCKSTEP"

#: Largest lockstep batch the planner builds.  Bounds per-unit memory
#: (each cell owns a full table set inside the kernel) and keeps enough
#: independent units for the worker pool to stay busy.
LOCKSTEP_MAX_BATCH = 16

_BASELINE_PREDICTORS = {
    "gshare": GsharePredictor,
    "bimodal": BimodalPredictor,
    "perceptron": PerceptronPredictor,
    "ogehl": OgehlPredictor,
    "local": LocalHistoryPredictor,
}


def default_workers() -> int:
    """Pool size when the caller does not choose: one per CPU, min 2.

    The floor of 2 keeps the default path genuinely parallel (pipelined
    pickling/execution) even on single-core containers.
    """
    return max(2, os.cpu_count() or 1)


def _build_predictor(spec: PredictorSpec, adaptive: bool, seed: int | None):
    """Instantiate the predictor for one job.

    A non-None per-job seed re-seeds the TAGE deterministic random
    sources (LFSR + allocation xorshift); the baseline predictors hold
    no random state.
    """
    params = dict(spec.params)
    if spec.kind == "tage":
        automaton = AUTOMATON_PROBABILISTIC if adaptive else spec.automaton
        if seed is not None:
            # Two independent 32-bit streams from one job seed; the
            # constants are arbitrary odd masks keeping the seeds nonzero.
            params.setdefault("lfsr_seed", (seed ^ 0xA5A5A5A5) or 1)
            params.setdefault("alloc_seed", (seed ^ 0x3C6EF373) or 1)
        return build_predictor(
            spec.size,
            automaton=automaton,
            sat_prob_log2=spec.sat_prob_log2,
            **params,
        )
    return _BASELINE_PREDICTORS[spec.kind](**params)


def _build_binary_estimator(spec: EstimatorSpec, predictor):
    params = dict(spec.params)
    if spec.kind == "jrs":
        return JrsEstimator(**params)
    if spec.kind == "ejrs":
        return EnhancedJrsEstimator(**params)
    return SelfConfidenceEstimator(predictor, **params)  # "self"


def build_cell_predictor(spec: PredictorSpec, adaptive: bool = False,
                         seed: int | None = None):
    """Public entry to the per-cell predictor instantiation.

    The serving layer (:mod:`repro.serve`) builds tenant state through
    this so a served (predictor, estimator) cell is constructed exactly
    like the equivalent sweep job — same presets, same seed derivation.
    """
    return _build_predictor(spec, adaptive, seed)


def build_cell_binary_estimator(spec: EstimatorSpec, predictor):
    """Public entry to the per-cell binary-estimator instantiation."""
    return _build_binary_estimator(spec, predictor)


def execute_job(job: JobSpec) -> JobResult:
    """Run one grid cell; pure function of the job spec (picklable)."""
    start = time.perf_counter()
    trace = get_trace(job.trace, job.n_branches)
    predictor = _build_predictor(job.predictor, job.adaptive, job.seed)

    if job.estimator.kind == "tage":
        estimator = TageConfidenceEstimator(predictor, **dict(job.estimator.params))
        controller = (
            AdaptiveSaturationController(predictor, target_mkp=job.target_mkp)
            if job.adaptive
            else None
        )
        result = simulate(
            trace,
            predictor,
            estimator=estimator,
            controller=controller,
            warmup_branches=job.warmup_branches,
            backend=job.backend,
            materialization_dir=job.materialization_dir,
        )
        binary = result.binary_confusion()
        estimator_bits = 0
    else:
        estimator = _build_binary_estimator(job.estimator, predictor)
        binary, result = simulate_binary(
            trace,
            predictor,
            estimator,
            warmup_branches=job.warmup_branches,
            backend=job.backend,
            materialization_dir=job.materialization_dir,
        )
        estimator_bits = estimator.storage_bits()

    return JobResult(
        job=job,
        result=result,
        binary=binary,
        estimator_bits=estimator_bits,
        elapsed=time.perf_counter() - start,
    )


def execute_batch(batch: LockstepBatch) -> tuple[JobResult, ...]:
    """Run one lockstep batch; one :class:`JobResult` per member, in order.

    Every member shares the batch's trace and plane geometry (the
    planner guarantees it), so the planes are resolved once and all
    cells advance through a single
    :func:`~repro.sim.fast.lockstep.simulate_tage_lockstep` kernel pass
    — bit-identical to running each member through
    :func:`execute_job` independently.  The shared wall-clock cost is
    attributed evenly across the members' ``elapsed`` fields.
    """
    start = time.perf_counter()
    first = batch.members[0][1]
    trace = get_trace(first.trace, first.n_branches)
    fast = load_fast_engine()
    cells = []
    for _, job in batch.members:
        predictor = _build_predictor(job.predictor, job.adaptive, job.seed)
        estimator = TageConfidenceEstimator(predictor, **dict(job.estimator.params))
        controller = (
            AdaptiveSaturationController(predictor, target_mkp=job.target_mkp)
            if job.adaptive
            else None
        )
        cells.append(
            fast.LockstepCell(
                predictor=predictor,
                estimator=estimator,
                controller=controller,
                warmup_branches=job.warmup_branches,
            )
        )
    results = fast.simulate_tage_lockstep(
        trace, cells, materialization=first.materialization_dir
    )
    elapsed = (time.perf_counter() - start) / len(batch.members)
    return tuple(
        JobResult(
            job=job,
            result=result,
            binary=result.binary_confusion(),
            estimator_bits=0,
            elapsed=elapsed,
        )
        for (_, job), result in zip(batch.members, results)
    )


def execute_work(unit: JobSpec | LockstepBatch):
    """The broker/worker entry point: run one work unit of either shape."""
    if isinstance(unit, LockstepBatch):
        return execute_batch(unit)
    return execute_job(unit)


def _lockstep_key(job: JobSpec, geometries: dict) -> tuple | None:
    """The grouping key a job must share to join a lockstep batch
    (None = the job cannot join one).

    Only supported fast-backend TAGE×observation accuracy cells
    qualify (the capability API's ``lockstep`` flag); the key then pins
    everything batched execution shares — the trace (and its length)
    and the plane geometry the predictor's config folds to.  Kernel
    knobs (automaton, saturation probability, seeds, warmup, §6.2
    controller) may differ freely across members.
    """
    if job.backend != "fast":
        return None
    if job.predictor.kind != "tage" or job.estimator.kind != "tage":
        return None
    cell = (job.predictor, job.adaptive)
    if cell not in geometries:
        fast = load_fast_engine()
        predictor = _build_predictor(job.predictor, job.adaptive, None)
        geometries[cell] = fast.plane_geometry(predictor.config)
    return (job.trace, job.n_branches, job.materialization_dir,
            geometries[cell])


def plan_lockstep(
    pending: list[tuple[int, JobSpec]],
    progress: Callable[[str], None] | None = None,
) -> list[tuple[int, JobSpec | LockstepBatch]]:
    """Fuse shareable fast TAGE jobs into :class:`LockstepBatch` units.

    Jobs sharing one trace's planes (same trace, branch count and plane
    geometry) are grouped — in grid order, at most
    :data:`LOCKSTEP_MAX_BATCH` per batch — and each group of two or
    more becomes one batch unit, emitted at its first member's position
    with that member's grid index as the unit index.  Everything else
    passes through unchanged, so the plan preserves grid order and
    the batching is invisible in the results: each member is cached,
    journaled and reported under its own index and spec hash.
    """
    geometries: dict = {}
    groups: dict[tuple, list[tuple[int, JobSpec]]] = {}
    keys: dict[int, tuple | None] = {}
    for index, job in pending:
        key = _lockstep_key(job, geometries)
        keys[index] = key
        if key is not None:
            groups.setdefault(key, []).append((index, job))

    batches: dict[int, LockstepBatch] = {}
    fused_members: set[int] = set()
    n_fused_jobs = 0
    for members in groups.values():
        for chunk_start in range(0, len(members), LOCKSTEP_MAX_BATCH):
            chunk = members[chunk_start:chunk_start + LOCKSTEP_MAX_BATCH]
            if len(chunk) < 2:
                continue
            batch = LockstepBatch(members=tuple(chunk))
            batches[batch.index] = batch
            fused_members.update(index for index, _ in chunk)
            n_fused_jobs += len(chunk)

    plan: list[tuple[int, JobSpec | LockstepBatch]] = []
    for index, job in pending:
        if index in batches:
            plan.append((index, batches[index]))
        elif index not in fused_members:
            plan.append((index, job))
    if progress and batches:
        progress(
            f"lockstep: fused {n_fused_jobs} job(s) into {len(batches)} "
            f"batch(es) of <= {LOCKSTEP_MAX_BATCH}"
        )
    return plan


def _lockstep_enabled(lockstep: bool | None, faults: str) -> bool:
    """Resolve the lockstep toggle: explicit arg > env > default-on.

    Fault injection disables batching regardless: fault plans key on
    job indices and fire per dispatched *unit*, so fusing jobs would
    silently shift which jobs a plan hits.
    """
    if faults:
        return False
    if lockstep is not None:
        return lockstep
    return os.environ.get(LOCKSTEP_ENV, "").strip().lower() not in (
        "0", "off", "false", "no",
    )


def _job_cell(job: JobSpec) -> Cell:
    """The capability-query cell for one grid job: throwaway component
    instances built from the cell's specs, exactly as execution would
    build them, so the pre-pass can never disagree with execution."""
    predictor = _build_predictor(job.predictor, job.adaptive, job.seed)
    if job.estimator.kind == "tage":
        estimator = TageConfidenceEstimator(predictor, **dict(job.estimator.params))
        controller = (
            AdaptiveSaturationController(predictor, target_mkp=job.target_mkp)
            if job.adaptive
            else None
        )
        return Cell(predictor=predictor, estimator=estimator, controller=controller)
    return Cell(
        predictor=predictor,
        estimator=_build_binary_estimator(job.estimator, predictor),
        binary=True,
    )


def _fast_cell_capability(job: JobSpec) -> Capability:
    """The fast backend's capability verdict for one grid cell."""
    return get_backend("fast").capability(_job_cell(job))


def _resolve_fast_fallbacks(
    pending: list[tuple[int, JobSpec]],
    progress: Callable[[str], None] | None = None,
) -> list[tuple[int, JobSpec]]:
    """Downgrade unsupported ``backend="fast"`` cells before fan-out.

    Probing once per distinct (predictor, estimator) cell — instead of
    letting every worker rediscover the same fallback — means a mixed
    sweep emits exactly one :class:`FastBackendFallbackWarning` per
    unsupported cell per run, regardless of trace count or worker count.
    The downgraded jobs run on the reference engine directly (identical
    results; the backend is not part of the cache identity).
    """
    verdicts: dict[tuple[PredictorSpec, EstimatorSpec, bool], Capability] = {}
    resolved: list[tuple[int, JobSpec]] = []
    downgraded: dict[tuple[PredictorSpec, EstimatorSpec, bool], int] = {}
    for index, job in pending:
        if job.backend != "fast":
            resolved.append((index, job))
            continue
        cell = (job.predictor, job.estimator, job.adaptive)
        if cell not in verdicts:
            verdicts[cell] = _fast_cell_capability(job)
        if verdicts[cell]:
            resolved.append((index, job))
        else:
            downgraded[cell] = downgraded.get(cell, 0) + 1
            resolved.append((index, replace(job, backend="reference")))
    for cell, count in downgraded.items():
        predictor, estimator, _ = cell
        warnings.warn(
            f"fast backend cannot run {predictor.label}x{estimator.label} "
            f"({verdicts[cell].reason}); falling back to the reference "
            f"engine for {count} job(s)",
            FastBackendFallbackWarning,
            stacklevel=3,
        )
        if progress:
            progress(
                f"fallback: {predictor.label}x{estimator.label} -> reference "
                f"({count} job(s))"
            )
    return resolved


def _count_plane_files(materialization_dir) -> int:
    """Plane materializations currently on disk (0 when sharing is off)."""
    if materialization_dir is None:
        return 0
    root = Path(materialization_dir)
    if not root.is_dir():
        return 0
    return sum(1 for _ in root.glob("*.npy"))


@dataclass(frozen=True)
class SweepRun:
    """A completed sweep: the aggregate table plus execution accounting.

    ``quarantined`` lists the jobs the broker gave up on (deterministic
    failures, or transient ones past ``max_retries``); their cells are
    absent from ``table``, making the run a *partial-result report*
    rather than a total loss.  ``run_id`` names the journal a
    ``--resume`` of this run would replay.
    """

    spec: ExperimentSpec
    expansion: GridExpansion
    table: ResultTable
    workers: int
    elapsed: float
    quarantined: tuple[QuarantinedJob, ...] = ()
    run_id: str | None = None
    n_retries: int = 0

    @property
    def n_jobs(self) -> int:
        return len(self.table)

    @property
    def n_cached(self) -> int:
        return self.table.n_cached

    @property
    def n_executed(self) -> int:
        return self.table.n_executed

    @property
    def n_quarantined(self) -> int:
        return len(self.quarantined)

    def describe(self) -> str:
        text = (
            f"{self.spec.name} [{self.spec.spec_hash()}]: "
            f"{self.n_jobs} jobs ({self.n_cached} cached, "
            f"{self.n_executed} executed) with {self.workers} workers "
            f"in {self.elapsed:.2f}s"
        )
        if self.n_retries:
            text += f"; {self.n_retries} retr{'y' if self.n_retries == 1 else 'ies'}"
        if self.quarantined:
            text += f"; {self.n_quarantined} QUARANTINED"
        return text


def default_journal_dir(cache: ResultCache | None) -> Path | None:
    """Where run journals live by default: ``<cache root>/runs``."""
    if cache is None:
        return None
    return cache.root / "runs"


def _open_journal(
    spec: ExperimentSpec,
    expansion: GridExpansion,
    run_id: str | None,
    journal_dir,
    resume: bool,
    fsync_journal: bool,
    progress: Callable[[str], None] | None,
) -> tuple[RunJournal | None, str | None, dict[int, str]]:
    """Open (or resume) this run's journal.

    Returns ``(journal, run_id, done)`` where ``done`` maps grid indices
    the journal already records as completed to their job hashes.
    """
    if journal_dir is None:
        return None, run_id, {}
    if run_id is None:
        # repro: allow[RPR001] run-id labels the journal file, never results
        run_id = f"{spec.spec_hash()}-{uuid.uuid4().hex[:8]}"
    path = journal_path(journal_dir, run_id)
    job_hashes = [job.spec_hash() for job in expansion.jobs]
    if resume and path.exists():
        state = replay_journal(path, run_id)
        if state.spec_hash != spec.spec_hash():
            raise JournalError(
                f"journal {path} records spec {state.spec_hash}, but the "
                f"resumed spec hashes to {spec.spec_hash()}"
            )
        if list(state.job_hashes) != job_hashes:
            raise JournalError(
                f"journal {path} records a different grid expansion than "
                "the resumed spec produces"
            )
        journal = RunJournal(path, run_id, fresh=False, fsync=fsync_journal)
        journal.resume(len(state.done), len(state.pending_indices))
        if progress:
            progress(
                f"resume {run_id}: journal records {len(state.done)} of "
                f"{state.n_jobs} jobs done"
            )
        return journal, run_id, dict(state.done)
    journal = RunJournal(path, run_id, fresh=True, fsync=fsync_journal)
    journal.begin(spec.as_dict(), spec.spec_hash(), job_hashes)
    return journal, run_id, {}


def run_sweep(
    spec: ExperimentSpec,
    workers: int | None = 1,
    cache: ResultCache | None = None,
    progress: Callable[[str], None] | None = None,
    materialization_dir: str | os.PathLike | None = None,
    *,
    run_id: str | None = None,
    journal_dir: str | os.PathLike | None = None,
    resume: bool = False,
    max_retries: int = 2,
    heartbeat_timeout: float = 30.0,
    faults: str | None = None,
    fsync_journal: bool = True,
    lockstep: bool | None = None,
) -> SweepRun:
    """Execute every cell of a spec and aggregate the results.

    Args:
        spec: the declarative grid.
        workers: pool size; 1 (the default) runs in-process, ``None``
            picks :func:`default_workers`.  Results are identical for
            every value.
        cache: optional :class:`ResultCache`; hits skip execution,
            misses are stored the moment each job completes.
        progress: optional sink for human-readable status lines.
        materialization_dir: directory where fast-backend TAGE index/tag
            plane materializations are memmapped and shared across jobs
            and runs.  Defaults to ``<cache root>/planes`` when a cache
            is given (None and no cache → planes are computed per job in
            memory).
        run_id: names this run's journal (auto-generated when omitted);
            the handle ``--resume`` takes.
        journal_dir: where journals live; defaults to
            ``<cache root>/runs`` when a cache is given, and journaling
            is disabled when neither is available.
        resume: continue the journal named by ``run_id`` — completed
            jobs are served bit-identically from the cache; only the
            rest execute.  A missing journal starts fresh.
        max_retries: transient-failure budget per job (crash, stall,
            :class:`~repro.sweep.faults.TransientJobError`) before the
            job is quarantined.
        heartbeat_timeout: seconds of worker silence before the broker
            declares a straggler and re-dispatches its job.
        faults: a :class:`~repro.sweep.faults.FaultInjector` plan;
            defaults to ``$REPRO_FAULTS``.
        fsync_journal: fsync each journal record (leave on outside
            tests; without it a crash can forget acknowledged progress).
        lockstep: fuse fast-backend TAGE jobs sharing one trace's
            planes into batched kernel passes (bit-identical results;
            see :func:`plan_lockstep`).  ``None`` (the default) reads
            ``$REPRO_LOCKSTEP`` and falls back to on; fault injection
            forces it off.  Execution plumbing like ``backend`` — never
            part of the spec hash or the cache identity.

    Returns:
        A :class:`SweepRun` whose table preserves grid order (minus any
        quarantined cells, reported in ``SweepRun.quarantined``).

    Raises:
        SweepInterrupted: on SIGINT/SIGTERM, after the journal has a
            clean checkpoint; resume with the run id it carries.
    """
    if workers is None:
        workers = default_workers()
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if materialization_dir is None and cache is not None:
        materialization_dir = cache.root / "planes"
    if journal_dir is None:
        journal_dir = default_journal_dir(cache)
    if faults is None:
        faults = os.environ.get(FAULTS_ENV, "")

    start = time.perf_counter()
    expansion = expand(spec)
    if progress:
        progress(expansion.describe())

    journal, run_id, journal_done = _open_journal(
        spec, expansion, run_id, journal_dir, resume, fsync_journal, progress
    )
    try:
        slots: list[JobResult | None] = []
        pending: list[tuple[int, JobSpec]] = []
        for index, job in enumerate(expansion.jobs):
            hit = cache.load(job) if cache is not None else None
            if hit is None and index in journal_done:
                # The journal promised this job was done but the cache
                # cannot honour it (entry evicted or quarantined as
                # corrupt): re-run rather than fail the resume.
                if progress:
                    progress(
                        f"journal records job {index} done but the cache "
                        "misses; re-running"
                    )
            slots.append(hit)
            if hit is None:
                pending.append((index, job))

        if progress and cache is not None:
            progress(f"cache: {len(slots) - len(pending)} hits, "
                     f"{len(pending)} misses")

        quarantined: tuple[QuarantinedJob, ...] = ()
        n_retries = 0
        if pending:
            pending = _resolve_fast_fallbacks(pending, progress)
            if materialization_dir is not None:
                pending = [
                    (index, replace(job, materialization_dir=str(materialization_dir)))
                    if job.backend == "fast"
                    else (index, job)
                    for index, job in pending
                ]
            planes_before = _count_plane_files(materialization_dir)
            units: list[tuple[int, JobSpec | LockstepBatch]] = (
                plan_lockstep(pending, progress)
                if _lockstep_enabled(lockstep, faults)
                else list(pending)
            )
            broker = Broker(
                BrokerConfig(
                    workers=min(workers, len(units)),
                    max_retries=max_retries,
                    heartbeat_timeout=heartbeat_timeout,
                    faults=faults,
                ),
                ctx=multiprocessing.get_context(),
                run_id=run_id,
                cache=cache,
                journal=journal,
                progress=progress,
            )
            outcomes, dropped = broker.run(units)
            n_retries = broker.n_retries
            quarantined = tuple(dropped)
            for index, outcome in outcomes.items():
                slots[index] = outcome
            if progress and materialization_dir is not None:
                planes_after = _count_plane_files(materialization_dir)
                progress(
                    f"materializations: {planes_after} plane file(s) in "
                    f"{materialization_dir} ({planes_after - planes_before} new, "
                    f"{planes_before} reused from disk)"
                )

        if journal is not None:
            journal.end(
                sum(1 for slot in slots if slot is not None), len(quarantined)
            )
    finally:
        if journal is not None:
            journal.close()

    table = ResultTable([slot for slot in slots if slot is not None])
    run = SweepRun(
        spec=spec,
        expansion=expansion,
        table=table,
        workers=workers,
        elapsed=time.perf_counter() - start,
        quarantined=quarantined,
        run_id=run_id,
        n_retries=n_retries,
    )
    if progress:
        progress(run.describe())
    return run


def resume_sweep(
    run_id: str,
    cache: ResultCache,
    workers: int | None = 1,
    progress: Callable[[str], None] | None = None,
    *,
    journal_dir: str | os.PathLike | None = None,
    backend: str | None = None,
    max_retries: int = 2,
    heartbeat_timeout: float = 30.0,
    faults: str | None = None,
    fsync_journal: bool = True,
    lockstep: bool | None = None,
) -> SweepRun:
    """Resume an interrupted run from its journal alone.

    The spec is reconstructed from the journal's ``begin`` record —
    the caller needs nothing but the run id.  Completed jobs are served
    bit-identically from the cache; unfinished (and previously
    quarantined) jobs execute.

    Args:
        run_id: the id printed (and journaled) by the original run.
        cache: the same result cache the original run used.
        backend: engine override; None keeps the spec's recorded axes on
            the default backend (results are backend-invariant).

    Raises:
        JournalError: unknown run id, or a journal that does not match
            its own spec.
    """
    if journal_dir is None:
        journal_dir = default_journal_dir(cache)
    path = journal_path(journal_dir, run_id)
    if not path.exists():
        raise JournalError(f"no journal for run id {run_id!r} under {journal_dir}")
    state = replay_journal(path, run_id)
    spec = ExperimentSpec.from_dict(state.spec_dict)
    if backend is not None:
        spec = spec.with_options(backend=backend)
    return run_sweep(
        spec,
        workers=workers,
        cache=cache,
        progress=progress,
        run_id=run_id,
        journal_dir=journal_dir,
        resume=True,
        max_retries=max_retries,
        heartbeat_timeout=heartbeat_timeout,
        faults=faults,
        fsync_journal=fsync_journal,
        lockstep=lockstep,
    )
