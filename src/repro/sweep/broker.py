"""The sweep broker: dispatch, supervise, retry, quarantine, checkpoint.

:class:`Broker` owns the execution of a sweep's pending jobs.  It spawns
:mod:`repro.sweep.worker` processes (one pair of pipes each), assigns
jobs to idle workers, and classifies everything that can go wrong:

* **transient failures** (worker-reported ``transient`` errors, worker
  *crashes* — the process died holding a job — and *stalls* — the
  heartbeat went silent past the deadline): retried with exponential
  backoff + deterministic jitter, up to ``max_retries``; a job that
  exhausts its retries is quarantined as poisoned;
* **deterministic failures** (any other exception from the job): the
  same pure function over the same spec would fail identically, so the
  job is quarantined immediately and the sweep *keeps going* — the run
  ends with a partial result table plus a quarantine report instead of
  throwing away every other cell;
* **SIGINT/SIGTERM**: the broker stops dispatching, journals a clean
  ``interrupt`` checkpoint, shuts the workers down and raises
  :class:`SweepInterrupted` — ``repro sweep --resume <run-id>`` then
  picks up exactly the unfinished jobs.

Completed results are stored to the :class:`ResultCache` *as they
arrive* (not after the run), which is what makes the journal's ``done``
records honest: once a job is journaled done, its bytes are already on
disk.

``workers == 1`` runs inline — no subprocesses, same retry/quarantine/
journal semantics.  Inline, an injected ``kill`` fault takes down the
whole process: that is the box-crash rehearsal, and the journal plus
cache make the subsequent resume bit-identical.

Results are bit-for-bit independent of worker count, retries, stalls
and dispatch order: :func:`~repro.sweep.executor.execute_job` is a pure
function of the job spec, and the broker only decides *when and where*
it runs.
"""

from __future__ import annotations

import heapq
import os
import signal
import threading
import time
import zlib
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import Callable

from repro.sweep.faults import FaultInjector, TransientJobError
from repro.sweep.journal import RunJournal
from repro.sweep.result import JobResult
from repro.sweep.spec import JobSpec, LockstepBatch
from repro.sweep.worker import DEFAULT_HEARTBEAT_INTERVAL, worker_main

__all__ = [
    "Broker",
    "BrokerConfig",
    "QuarantinedJob",
    "SweepInterrupted",
    "backoff_delay",
]

#: Transient failure kinds a worker death maps to, by detection path.
_CRASH = "crash"
_STALL = "stall"


def backoff_delay(base: float, cap: float, run_id: str, index: int,
                  attempt: int) -> float:
    """Capped exponential backoff with deterministic jitter.

    The jitter fraction comes from a CRC-32 of (run id, job, attempt) —
    retries of many jobs quarantined by one event spread out instead of
    thundering back together, yet the schedule is reproducible.
    """
    delay = min(cap, base * (2.0 ** attempt))
    frac = (zlib.crc32(f"{run_id}:{index}:{attempt}".encode()) & 0xFFFFFFFF) / 0xFFFFFFFF
    return delay * (0.5 + 0.5 * frac)


@dataclass(frozen=True)
class BrokerConfig:
    """Supervision knobs; the defaults suit one-box CI-scale sweeps."""

    workers: int = 1
    max_retries: int = 2
    backoff_base: float = 0.25
    backoff_cap: float = 5.0
    heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL
    heartbeat_timeout: float = 30.0
    poll_interval: float = 0.1
    faults: str = ""

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.heartbeat_timeout <= self.heartbeat_interval:
            raise ValueError(
                "heartbeat_timeout must exceed heartbeat_interval "
                f"({self.heartbeat_timeout} <= {self.heartbeat_interval})"
            )


@dataclass(frozen=True)
class QuarantinedJob:
    """A job the run gave up on, with why and how hard it tried."""

    index: int
    job: JobSpec
    kind: str
    error: str
    attempts: int

    def describe(self) -> str:
        return (
            f"job {self.index} ({self.job.label}): {self.kind} after "
            f"{self.attempts} attempt(s) — {self.error}"
        )


class SweepInterrupted(RuntimeError):
    """SIGINT/SIGTERM checkpointed the run; resume with the run id."""

    def __init__(self, run_id: str | None, n_done: int, n_pending: int) -> None:
        super().__init__(
            f"sweep interrupted with {n_done} job(s) done, {n_pending} pending"
            + (f"; resume with run id {run_id}" if run_id else "")
        )
        self.run_id = run_id
        self.n_done = n_done
        self.n_pending = n_pending


class _WorkerSlot:
    """One supervised worker process with its private pipe pair."""

    def __init__(self, worker_id: int, ctx, config: BrokerConfig) -> None:
        self.worker_id = worker_id
        self._ctx = ctx
        self._config = config
        self.busy: tuple[int, int, JobSpec | LockstepBatch] | None = None
        self.respawns = 0
        self.spawn()

    def spawn(self) -> None:
        task_r, self.task_w = self._ctx.Pipe(duplex=False)
        self.result_r, result_w = self._ctx.Pipe(duplex=False)
        self.process = self._ctx.Process(
            target=worker_main,
            args=(self.worker_id, task_r, result_w,
                  self._config.heartbeat_interval, self._config.faults),
            daemon=True,
        )
        self.process.start()
        # The child holds its own copies; the parent must drop these or
        # EOF detection on worker death never triggers.
        task_r.close()
        result_w.close()
        self.busy = None
        self.last_beat = time.monotonic()

    def assign(self, index: int, attempt: int,
               job: JobSpec | LockstepBatch) -> None:
        self.task_w.send((index, attempt, job))
        self.busy = (index, attempt, job)
        self.last_beat = time.monotonic()

    def kill(self) -> None:
        if self.process.is_alive():
            self.process.kill()
        self.process.join()

    def respawn(self) -> None:
        self.kill()
        self._close_pipes()
        self.respawns += 1
        self.spawn()

    def shutdown(self, grace: float = 1.0) -> None:
        try:
            self.task_w.send(None)
        except (BrokenPipeError, OSError):
            pass
        self.process.join(grace)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(grace)
        if self.process.is_alive():
            self.process.kill()
            self.process.join()
        self._close_pipes()

    def _close_pipes(self) -> None:
        for conn in (self.task_w, self.result_r):
            try:
                conn.close()
            except OSError:
                pass


@dataclass
class _JobState:
    """Broker-side bookkeeping for one pending work unit (a single job
    or a :class:`~repro.sweep.spec.LockstepBatch` of jobs)."""

    job: JobSpec | LockstepBatch
    attempt: int = 0
    history: list[str] = field(default_factory=list)


def _unit_members(index: int, unit: JobSpec | LockstepBatch):
    """The (grid index, job) pairs one dispatched unit carries."""
    if isinstance(unit, LockstepBatch):
        return unit.members
    return ((index, unit),)


class Broker:
    """Run a batch of jobs to completion (or checkpointed interruption)."""

    def __init__(
        self,
        config: BrokerConfig,
        ctx,
        run_id: str | None = None,
        cache=None,
        journal: RunJournal | None = None,
        progress: Callable[[str], None] | None = None,
    ) -> None:
        self.config = config
        self._ctx = ctx
        self.run_id = run_id
        self.cache = cache
        self.journal = journal
        self.progress = progress
        self.injector = FaultInjector.parse(config.faults)
        self.n_retries = 0
        self._stop = threading.Event()
        self._stop_signal: int | None = None
        #: Unit indices completed or quarantined (a lockstep batch
        #: settles as one unit; its members fan out individually).
        self._settled: set[int] = set()

    # -- shared bookkeeping --------------------------------------------

    def _log(self, line: str) -> None:
        if self.progress:
            self.progress(line)

    def _complete(self, index: int, state: _JobState, outcome,
                  results: dict[int, JobResult]) -> None:
        """Record a finished unit: one result, or a batch fanned out.

        A lockstep batch returns one :class:`JobResult` per member (in
        member order); each is stored, journaled and slotted under its
        own grid index and spec hash, so downstream consumers (cache,
        resume, result table) never see the batching.
        """
        if isinstance(state.job, LockstepBatch):
            pairs = list(zip(state.job.members, outcome))
        else:
            pairs = [((index, state.job), outcome)]
        for (job_index, job), job_outcome in pairs:
            results[job_index] = job_outcome
            if self.cache is not None:
                self.cache.store(job, job_outcome)
                if self.injector.post_store(job_index, state.attempt,
                                            self.cache.path(job)):
                    self._log(f"fault: corrupted cache entry for job {job_index} "
                              f"({job.spec_hash()})")
            if self.journal is not None:
                self.journal.job_done(job_index, job.spec_hash(), state.attempt)
        self._settled.add(index)

    def _quarantine(self, index: int, state: _JobState, kind: str, error: str,
                    quarantined: list[QuarantinedJob]) -> None:
        for job_index, job in _unit_members(index, state.job):
            entry = QuarantinedJob(
                index=job_index, job=job, kind=kind, error=error,
                attempts=state.attempt + 1,
            )
            quarantined.append(entry)
            if self.journal is not None:
                self.journal.job_quarantined(
                    job_index, job.spec_hash(), kind, error, state.attempt + 1
                )
            self._log(f"quarantine: {entry.describe()}")
        self._settled.add(index)

    def _fail(self, index: int, state: _JobState, kind: str, error: str,
              retry_heap: list, quarantined: list[QuarantinedJob]) -> None:
        """Classify one failure into retry-with-backoff or quarantine."""
        state.history.append(f"{kind}: {error}")
        if kind == "deterministic" or state.attempt >= self.config.max_retries:
            reason = kind if kind == "deterministic" else f"{kind} (retries exhausted)"
            self._quarantine(index, state, reason, error, quarantined)
            return
        if self.journal is not None:
            self.journal.job_retry(index, state.attempt, kind, error)
        delay = backoff_delay(
            self.config.backoff_base, self.config.backoff_cap,
            self.run_id or "", index, state.attempt,
        )
        state.attempt += 1
        self.n_retries += 1
        heapq.heappush(retry_heap, (time.monotonic() + delay, index))
        self._log(
            f"retry: job {index} ({state.job.label}) after {kind} "
            f"({error}); attempt {state.attempt} in {delay:.2f}s"
        )

    # -- signal handling -----------------------------------------------

    def _install_signal_handlers(self):
        """Route SIGINT/SIGTERM to the stop flag; returns the restorer.

        Only possible from the main thread (signal module rule); library
        callers driving sweeps from other threads simply keep Python's
        default behaviour.
        """
        if threading.current_thread() is not threading.main_thread():
            return lambda: None

        def handler(signum, frame):
            self._stop_signal = signum
            self._stop.set()

        previous = {
            signum: signal.signal(signum, handler)
            for signum in (signal.SIGINT, signal.SIGTERM)
        }

        def restore():
            for signum, old in previous.items():
                signal.signal(signum, old)

        return restore

    def _raise_interrupted(self, results: dict, states: dict) -> None:
        n_jobs = sum(
            len(_unit_members(index, state.job))
            for index, state in states.items()
        )
        n_pending = n_jobs - len(results)
        if self.journal is not None:
            self.journal.interrupt(len(results), n_pending)
        self._log(
            f"interrupted: checkpointed {len(results)} done, "
            f"{n_pending} pending"
            + (f"; resume with --resume {self.run_id}" if self.run_id else "")
        )
        raise SweepInterrupted(self.run_id, len(results), n_pending)

    # -- execution -----------------------------------------------------

    def run(
        self, pending: list[tuple[int, JobSpec | LockstepBatch]]
    ) -> tuple[dict[int, JobResult], list[QuarantinedJob]]:
        """Execute the pending work units; returns (results by grid
        index, quarantined jobs).  Units are single jobs or
        :class:`~repro.sweep.spec.LockstepBatch` groups; batch results
        fan out so the returned dict always maps *job* indices.

        Raises:
            SweepInterrupted: after journaling a clean checkpoint on
                SIGINT/SIGTERM.
        """
        if not pending:
            return {}, []
        self._settled = set()
        restore = self._install_signal_handlers()
        try:
            if self.config.workers == 1 or len(pending) == 1:
                return self._run_inline(pending)
            return self._run_pool(pending)
        finally:
            restore()

    def _run_inline(self, pending) -> tuple[dict[int, JobResult], list[QuarantinedJob]]:
        from repro.sweep.executor import execute_work

        states = {index: _JobState(job=job) for index, job in pending}
        results: dict[int, JobResult] = {}
        quarantined: list[QuarantinedJob] = []
        retry_heap: list[tuple[float, int]] = []
        ready = deque(index for index, _ in pending)
        while ready or retry_heap:
            if self._stop.is_set():
                self._raise_interrupted(results, states)
            if not ready:
                due, index = heapq.heappop(retry_heap)
                wait = due - time.monotonic()
                if wait > 0 and self._stop.wait(wait):
                    self._raise_interrupted(results, states)
                ready.append(index)
                continue
            index = ready.popleft()
            state = states[index]
            try:
                self.injector.pre_job(index, state.attempt)
                outcome = execute_work(state.job)
            except TransientJobError as error:
                self._fail(index, state, "transient", str(error),
                           retry_heap, quarantined)
            except (MemoryError, OSError) as error:
                self._fail(index, state, "transient",
                           f"{type(error).__name__}: {error}",
                           retry_heap, quarantined)
            except Exception as error:  # noqa: BLE001 — classification boundary
                self._fail(index, state, "deterministic",
                           f"{type(error).__name__}: {error}",
                           retry_heap, quarantined)
            else:
                self._complete(index, state, outcome, results)
        return results, quarantined

    def _run_pool(self, pending) -> tuple[dict[int, JobResult], list[QuarantinedJob]]:
        states = {index: _JobState(job=job) for index, job in pending}
        results: dict[int, JobResult] = {}
        quarantined: list[QuarantinedJob] = []
        retry_heap: list[tuple[float, int]] = []
        ready = deque(index for index, _ in pending)
        n_workers = min(self.config.workers, len(pending))
        slots = [_WorkerSlot(i, self._ctx, self.config) for i in range(n_workers)]

        def outstanding() -> int:
            return len(states) - len(self._settled)

        try:
            while outstanding() > 0:
                if self._stop.is_set():
                    self._raise_interrupted(results, states)
                now = time.monotonic()
                while retry_heap and retry_heap[0][0] <= now:
                    ready.append(heapq.heappop(retry_heap)[1])
                for slot in slots:
                    if slot.busy is None and ready:
                        index = ready.popleft()
                        state = states[index]
                        try:
                            slot.assign(index, state.attempt, state.job)
                        except (BrokenPipeError, OSError):
                            # Dead before dispatch: requeue, respawn below.
                            ready.appendleft(index)
                self._drain_results(slots, states, results, quarantined, retry_heap)
                self._supervise(slots, states, results, quarantined, retry_heap,
                                outstanding)
        finally:
            for slot in slots:
                slot.shutdown()
        return results, quarantined

    def _drain_results(self, slots, states, results, quarantined, retry_heap):
        """Wait briefly for worker messages and apply them."""
        by_conn = {slot.result_r: slot for slot in slots}
        timeout = self.config.poll_interval
        if retry_heap:
            timeout = max(0.0, min(timeout,
                                   retry_heap[0][0] - time.monotonic()))
        try:
            ready_conns = mp_connection.wait(list(by_conn), timeout=timeout)
        except OSError:
            return
        for conn in ready_conns:
            slot = by_conn[conn]
            while True:
                try:
                    if not conn.poll():
                        break
                    message = conn.recv()
                except (EOFError, OSError):
                    break  # death handled by _supervise via is_alive()
                self._apply(slot, message, states, results, quarantined,
                            retry_heap)

    def _apply(self, slot, message, states, results, quarantined, retry_heap):
        kind = message[0]
        if kind == "beat":
            slot.last_beat = time.monotonic()
            return
        if kind == "done":
            _, _, index, attempt, outcome, _elapsed = message
            slot.busy = None
            slot.last_beat = time.monotonic()
            self._complete(index, states[index], outcome, results)
            return
        if kind == "failed":
            _, _, index, failure_kind, error = message
            slot.busy = None
            slot.last_beat = time.monotonic()
            self._fail(index, states[index], failure_kind, error,
                       retry_heap, quarantined)

    def _supervise(self, slots, states, results, quarantined, retry_heap,
                   outstanding):
        """Detect dead and silently stalled workers; recover their jobs."""
        now = time.monotonic()
        for slot in slots:
            if not slot.process.is_alive():
                # Drain any reports it managed to send before dying (a
                # worker can complete its job and then be killed idle).
                while True:
                    try:
                        if not slot.result_r.poll():
                            break
                        self._apply(slot, slot.result_r.recv(), states,
                                    results, quarantined, retry_heap)
                    except (EOFError, OSError):
                        break
                if slot.busy is not None:
                    index, attempt, job = slot.busy
                    slot.busy = None
                    if index not in states or index in self._settled:
                        pass
                    else:
                        self._fail(index, states[index], _CRASH,
                                   f"worker {slot.worker_id} died "
                                   f"(exitcode {slot.process.exitcode})",
                                   retry_heap, quarantined)
                if outstanding() > 0 and not self._stop.is_set():
                    slot.respawn()
            elif (slot.busy is not None
                  and now - slot.last_beat > self.config.heartbeat_timeout):
                index, attempt, job = slot.busy
                self._log(
                    f"straggler: worker {slot.worker_id} silent for "
                    f">{self.config.heartbeat_timeout:g}s on job {index}; "
                    "re-dispatching"
                )
                slot.busy = None
                self._fail(index, states[index], _STALL,
                           f"no heartbeat for {self.config.heartbeat_timeout:g}s",
                           retry_heap, quarantined)
                if outstanding() > 0 and not self._stop.is_set():
                    slot.respawn()
                else:
                    slot.kill()
