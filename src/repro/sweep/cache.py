"""On-disk memoization of completed sweep jobs.

Each executed :class:`~repro.sweep.result.JobResult` is pickled under
``<root>/<spec_hash>.pkl`` where ``spec_hash`` is the canonical digest of
the :class:`~repro.sweep.spec.JobSpec` (axes, scalar options and the
derived per-job seed all participate, plus a cache format version so
stale layouts never deserialize).  Because the key is per *job*, a new
sweep that overlaps a previous grid — one more trace, one more predictor
— only pays for the new cells.

Writes are atomic and durable (temp file + fsync + ``os.replace``) so a
crashed or killed worker can never leave a truncated entry behind.  An
entry that is nonetheless unreadable — torn by a power cut, scribbled on
by fault injection — is treated as a miss, *quarantined* to a
``.corrupt/`` sibling directory for post-mortem (rather than silently
overwritten in place), and reported with a one-line warning naming the
spec hash.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import warnings
from pathlib import Path

from repro.sweep.result import JobResult
from repro.sweep.spec import JobSpec, stable_digest

__all__ = ["ResultCache", "default_cache_dir", "CACHE_VERSION", "CORRUPT_DIR"]

#: Bump on any change that alters simulation *behaviour* or the pickled
#: result layout.  The package version participates in the key as well,
#: so released behaviour changes invalidate old entries automatically;
#: this counter covers in-between development churn.
CACHE_VERSION = 1

#: Environment override for the cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Sibling directory (under the cache root) corrupt entries move to.
CORRUPT_DIR = ".corrupt"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` or ``.repro-cache/sweeps`` under the cwd."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    return Path(".repro-cache") / "sweeps"


class ResultCache:
    """Pickle-per-job result store keyed by job spec hash."""

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()

    def key(self, job: JobSpec) -> str:
        """Cache key: job digest salted with the cache format counter and
        the package version, so simulator behaviour changes across
        releases never serve stale numbers."""
        from repro import __version__  # local import: repro imports sweep

        return stable_digest(
            {"v": CACHE_VERSION, "pkg": __version__, "job": job.as_dict()}
        )

    def path(self, job: JobSpec) -> Path:
        return self.root / f"{self.key(job)}.pkl"

    def load(self, job: JobSpec) -> JobResult | None:
        """The memoized result, or None on miss/corruption.

        A present-but-unreadable entry (truncated pickle, wrong type) is
        quarantined to ``<root>/.corrupt/`` with a one-line warning
        naming the spec hash, then reported as a miss — the sweep re-runs
        the job and the next :meth:`store` writes a fresh entry.
        """
        path = self.path(job)
        if not path.exists():
            return None
        try:
            with path.open("rb") as fh:
                cached = pickle.load(fh)
        except OSError:
            return None
        except (pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, ValueError):
            self._quarantine(path, job)
            return None
        if not isinstance(cached, JobResult):
            self._quarantine(path, job)
            return None
        return cached.cached()

    def _quarantine(self, path: Path, job: JobSpec) -> None:
        """Move a corrupt entry aside for post-mortem instead of serving
        or silently deleting it."""
        corrupt_dir = self.root / CORRUPT_DIR
        try:
            corrupt_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, corrupt_dir / path.name)
        except OSError:
            return  # cross-process race on the same entry: already moved
        warnings.warn(
            f"quarantined corrupt cache entry for job {job.spec_hash()} "
            f"to {corrupt_dir / path.name}; the job will re-run",
            RuntimeWarning,
            stacklevel=3,
        )

    def store(self, job: JobSpec, result: JobResult) -> None:
        """Atomically and durably persist a completed job.

        The temp file is fsynced before ``os.replace`` publishes it, so
        an entry can never be observed half-written — crucial for the
        run journal, whose ``done`` records promise the entry's bytes
        are on disk.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path(job)
        fd, tmp_name = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def __contains__(self, job: JobSpec) -> bool:
        """Membership means *loadability*: a truncated, corrupt or
        foreign pickle on the entry path is a miss, exactly as
        :meth:`load` would treat it — so "in cache" never claims an
        entry that execution would then have to recompute."""
        return self.load(job) is not None

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.pkl"))

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.pkl"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed
