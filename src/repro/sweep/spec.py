"""Experiment specifications: the declarative grid behind every sweep.

An :class:`ExperimentSpec` names three axes — predictors × confidence
estimators × traces — plus the scalar run options shared by every cell
(branch count, warm-up, adaptive control, base seed).  The spec is pure
data: frozen, hashable, and serializable to a canonical JSON form whose
SHA-256 digest (:meth:`ExperimentSpec.spec_hash`) keys the on-disk result
cache.  Expansion into concrete :class:`JobSpec` cells lives in
:mod:`repro.sweep.grid`; execution in :mod:`repro.sweep.executor`.

Predictor and estimator axes are themselves small specs
(:class:`PredictorSpec`, :class:`EstimatorSpec`) that name a *kind* plus
keyword parameters, so a grid can mix TAGE presets with the gshare /
perceptron / O-GEHL baselines and the storage-free TAGE observation with
the storage-based JRS estimators — exactly the cross-products the
paper's §2.2/§4 comparisons need.
"""

from __future__ import annotations

import hashlib
import json
import zlib
from dataclasses import dataclass, field, replace

from repro.sim.backends import DEFAULT_BACKEND, validate_backend

__all__ = [
    "PREDICTOR_KINDS",
    "ESTIMATOR_KINDS",
    "PredictorSpec",
    "EstimatorSpec",
    "ExperimentSpec",
    "JobSpec",
    "LockstepBatch",
    "canonical_json",
    "stable_digest",
]

#: Predictor kinds the sweep layer can instantiate.
PREDICTOR_KINDS = ("tage", "gshare", "bimodal", "perceptron", "ogehl", "local")

#: The paper's TAGE storage presets (Table 1).
TAGE_SIZES = ("16K", "64K", "256K")

#: Estimator kinds: ``tage`` is the paper's storage-free 7-class
#: observation (multi-class engine); the others follow the binary
#: high/low protocol of :func:`repro.sim.engine.simulate_binary`.
ESTIMATOR_KINDS = ("tage", "jrs", "ejrs", "self")

#: Estimator kinds evaluated with the binary high/low engine.
BINARY_ESTIMATOR_KINDS = ("jrs", "ejrs", "self")


def canonical_json(value) -> str:
    """Serialize plain data to a canonical (sorted, compact) JSON string."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def stable_digest(value, length: int = 16) -> str:
    """Stable hex digest of any plain-data value (canonical JSON SHA-256)."""
    digest = hashlib.sha256(canonical_json(value).encode()).hexdigest()
    return digest[:length]


def _freeze_params(params: dict) -> tuple[tuple[str, object], ...]:
    return tuple(sorted(params.items()))


def _thaw(value):
    """Undo JSON's tuple→list coercion so round-tripped specs stay
    hashable (journal resume rebuilds specs from their as_dict form)."""
    if isinstance(value, list):
        return tuple(_thaw(item) for item in value)
    return value


def _params_from_dict(pairs) -> tuple[tuple[str, object], ...]:
    return tuple(sorted((key, _thaw(value)) for key, value in pairs))


@dataclass(frozen=True)
class PredictorSpec:
    """One point on the predictor axis.

    Attributes:
        kind: one of :data:`PREDICTOR_KINDS`.
        size: TAGE storage preset (``"16K"`` / ``"64K"`` / ``"256K"``);
            TAGE only.
        automaton: TAGE 3-bit counter update rule (paper §6); TAGE only.
        sat_prob_log2: saturation probability ``1/2^k`` for the
            probabilistic automaton; TAGE only.
        params: extra constructor keywords — :class:`TageConfig` field
            overrides for TAGE, plain constructor arguments otherwise —
            stored as a sorted tuple of pairs so the spec stays hashable.
    """

    kind: str
    size: str | None = None
    automaton: str = "standard"
    sat_prob_log2: int = 7
    params: tuple[tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in PREDICTOR_KINDS:
            raise ValueError(
                f"unknown predictor kind {self.kind!r}; choose from {PREDICTOR_KINDS}"
            )
        if self.kind == "tage":
            if self.size is None:
                object.__setattr__(self, "size", "64K")
            elif self.size not in TAGE_SIZES:
                raise ValueError(
                    f"unknown TAGE size {self.size!r}; choose from {TAGE_SIZES}"
                )

    @classmethod
    def of(cls, kind: str, size: str | None = None, automaton: str = "standard",
           sat_prob_log2: int = 7, **params) -> "PredictorSpec":
        """Build a spec with free-form keyword parameters."""
        return cls(kind=kind, size=size, automaton=automaton,
                   sat_prob_log2=sat_prob_log2, params=_freeze_params(params))

    @classmethod
    def parse(cls, token: str) -> "PredictorSpec":
        """Parse a CLI token: ``tage-64K``, ``tage-16K-prob``, ``gshare`` ...

        The ``-prob`` suffix selects the §6 probabilistic automaton.
        """
        parts = token.split("-")
        if parts[0] == "tage":
            size = parts[1] if len(parts) > 1 else "64K"
            automaton = "probabilistic" if "prob" in parts[2:] else "standard"
            return cls.of("tage", size=size, automaton=automaton)
        if token in PREDICTOR_KINDS:
            return cls.of(token)
        raise ValueError(
            f"cannot parse predictor {token!r}; expected one of "
            f"{PREDICTOR_KINDS} or tage-<SIZE>[-prob]"
        )

    @classmethod
    def from_dict(cls, data: dict) -> "PredictorSpec":
        """Inverse of :meth:`as_dict` (journal/resume reconstruction)."""
        return cls(
            kind=data["kind"],
            size=data.get("size"),
            automaton=data.get("automaton", "standard"),
            sat_prob_log2=data.get("sat_prob_log2", 7),
            params=_params_from_dict(data.get("params", ())),
        )

    @property
    def label(self) -> str:
        """Short human-readable axis label (used in result rows)."""
        if self.kind == "tage":
            suffix = "-prob" if self.automaton == "probabilistic" else ""
            return f"tage-{self.size}{suffix}"
        return self.kind

    def as_dict(self) -> dict:
        """Plain-data form used for canonical hashing."""
        return {
            "kind": self.kind,
            "size": self.size,
            "automaton": self.automaton,
            "sat_prob_log2": self.sat_prob_log2,
            "params": [list(pair) for pair in self.params],
        }


@dataclass(frozen=True)
class EstimatorSpec:
    """One point on the confidence-estimator axis.

    ``tage`` is compatible with TAGE predictors only (it reads
    ``predictor.last_prediction``); ``self`` needs a sum-based predictor
    (perceptron / O-GEHL); ``jrs`` / ``ejrs`` keep their own gshare-style
    table and work with any predictor.
    """

    kind: str
    params: tuple[tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in ESTIMATOR_KINDS:
            raise ValueError(
                f"unknown estimator kind {self.kind!r}; choose from {ESTIMATOR_KINDS}"
            )

    @classmethod
    def of(cls, kind: str, **params) -> "EstimatorSpec":
        return cls(kind=kind, params=_freeze_params(params))

    @classmethod
    def from_dict(cls, data: dict) -> "EstimatorSpec":
        """Inverse of :meth:`as_dict` (journal/resume reconstruction)."""
        return cls(kind=data["kind"],
                   params=_params_from_dict(data.get("params", ())))

    @property
    def is_binary(self) -> bool:
        """True for high/low estimators run by ``simulate_binary``."""
        return self.kind in BINARY_ESTIMATOR_KINDS

    @property
    def label(self) -> str:
        return self.kind

    def compatible_with(self, predictor: PredictorSpec) -> bool:
        """Can this estimator observe that predictor?"""
        if self.kind == "tage":
            return predictor.kind == "tage"
        if self.kind == "self":
            return predictor.kind in ("perceptron", "ogehl")
        return True

    def as_dict(self) -> dict:
        return {"kind": self.kind, "params": [list(pair) for pair in self.params]}


@dataclass(frozen=True)
class JobSpec:
    """One fully resolved grid cell: a single (trace, predictor,
    estimator) simulation with its scalar run options.

    ``seed`` is the per-job RNG seed already derived by grid expansion
    (``None`` keeps each component's built-in deterministic seeds, which
    reproduces the pre-sweep ``run_suite`` results bit-for-bit).

    ``backend`` selects the simulation engine.  It is deliberately
    **excluded** from :meth:`as_dict` and therefore from
    :meth:`spec_hash`: the fast backend is bit-for-bit equivalent to the
    reference engine (enforced by ``tests/equivalence/``), so both
    backends share the same on-disk cache entries and a fast re-run of a
    reference sweep is served entirely from cache.

    ``materialization_dir`` (fast backend only) points the engine at the
    shared on-disk TAGE plane materializations; like ``backend`` it is
    execution plumbing, not identity, and stays out of the hash.
    """

    predictor: PredictorSpec
    estimator: EstimatorSpec
    trace: str
    n_branches: int
    warmup_branches: int = 0
    adaptive: bool = False
    target_mkp: float = 10.0
    seed: int | None = None
    backend: str = DEFAULT_BACKEND  # repro: allow[RPR002] execution-only; results are backend-invariant
    materialization_dir: str | None = None  # repro: allow[RPR002] execution-only plumbing

    def __post_init__(self) -> None:
        validate_backend(self.backend)

    def as_dict(self) -> dict:
        return {
            "predictor": self.predictor.as_dict(),
            "estimator": self.estimator.as_dict(),
            "trace": self.trace,
            "n_branches": self.n_branches,
            "warmup_branches": self.warmup_branches,
            "adaptive": self.adaptive,
            "target_mkp": self.target_mkp,
            "seed": self.seed,
        }

    def spec_hash(self) -> str:
        """Digest keying this job in the on-disk result cache."""
        return stable_digest(self.as_dict())

    @property
    def label(self) -> str:
        return f"{self.trace}/{self.predictor.label}/{self.estimator.label}"


@dataclass(frozen=True)
class LockstepBatch:
    """A fused work unit: fast-backend TAGE jobs sharing one trace's
    planes, executed in a single batched kernel pass.

    ``members`` keeps each job's original grid index so the broker can
    fan completion (cache store, journal record, result slot) back out
    per job — the batch is an execution vehicle, never an identity: each
    member is cached and journaled under its own :meth:`JobSpec.spec_hash`,
    bit-identical to an independent run (see
    ``tests/equivalence/test_lockstep.py``).  Built by
    :func:`repro.sweep.executor.plan_lockstep`; lives here (pure data
    over :class:`JobSpec`) so the broker can type-dispatch on it without
    importing the executor.
    """

    members: tuple[tuple[int, "JobSpec"], ...]

    def __post_init__(self) -> None:
        if len(self.members) < 2:
            raise ValueError(
                f"a lockstep batch needs >= 2 member jobs, got {len(self.members)}"
            )

    @property
    def index(self) -> int:
        """The unit's dispatch index: its first member's grid index."""
        return self.members[0][0]

    @property
    def label(self) -> str:
        first = self.members[0][1]
        return (
            f"lockstep[{len(self.members)}] {first.trace}/"
            f"{first.predictor.label}/{first.estimator.label}"
        )


@dataclass(frozen=True)
class ExperimentSpec:
    """The declarative sweep: three axes × shared scalar run options.

    Attributes:
        name: sweep label (reports, cache manifests).
        predictors / estimators / traces: the grid axes.
        n_branches: dynamic branches simulated per trace.
        warmup_branches: leading branches excluded from class accounting.
        adaptive: attach the §6.2 adaptive saturation controller
            (TAGE-observation cells only; forces the probabilistic
            automaton like :func:`repro.sim.runner.run_trace`).
        target_mkp: adaptive controller target.
        seed: ``None`` → every component keeps its fixed built-in seeds
            (legacy-identical results); an ``int`` → each job derives its
            own deterministic 32-bit seed from (seed, cell coordinates),
            so repeated cells are independent yet the whole sweep is
            reproducible and worker-count invariant.
        backend: simulation engine for every cell (``"reference"`` or
            ``"fast"``); excluded from :meth:`spec_hash` because results
            are backend-invariant (see :class:`JobSpec`), so switching
            backend reuses existing cache entries.
        skip_incompatible: drop (predictor, estimator) pairs that cannot
            be combined instead of raising during expansion.
    """

    name: str
    predictors: tuple[PredictorSpec, ...]
    estimators: tuple[EstimatorSpec, ...]
    traces: tuple[str, ...]
    n_branches: int = 16_000
    warmup_branches: int = 0
    adaptive: bool = False
    target_mkp: float = 10.0
    seed: int | None = None
    backend: str = DEFAULT_BACKEND  # repro: allow[RPR002] execution-only; results are backend-invariant
    skip_incompatible: bool = field(default=True, compare=False)  # repro: allow[RPR002] expansion policy, not result state

    def __post_init__(self) -> None:
        validate_backend(self.backend)
        if not self.predictors:
            raise ValueError("spec needs at least one predictor")
        if not self.estimators:
            raise ValueError("spec needs at least one estimator")
        if not self.traces:
            raise ValueError("spec needs at least one trace")
        if self.n_branches <= 0:
            raise ValueError(f"n_branches must be positive, got {self.n_branches}")
        if self.warmup_branches < 0:
            raise ValueError(
                f"warmup_branches must be non-negative, got {self.warmup_branches}"
            )

    def with_options(self, **changes) -> "ExperimentSpec":
        """A copy with scalar options replaced (axes stay shared)."""
        return replace(self, **changes)

    @classmethod
    def from_dict(cls, data: dict, backend: str = DEFAULT_BACKEND) -> "ExperimentSpec":
        """Inverse of :meth:`as_dict` — how ``--resume`` rebuilds the grid.

        ``backend`` is supplied by the caller because it is (by design)
        not part of the canonical dict: results are backend-invariant,
        so a run may be resumed on a different engine.
        """
        return cls(
            name=data["name"],
            predictors=tuple(
                PredictorSpec.from_dict(entry) for entry in data["predictors"]
            ),
            estimators=tuple(
                EstimatorSpec.from_dict(entry) for entry in data["estimators"]
            ),
            traces=tuple(data["traces"]),
            n_branches=data["n_branches"],
            warmup_branches=data.get("warmup_branches", 0),
            adaptive=data.get("adaptive", False),
            target_mkp=data.get("target_mkp", 10.0),
            seed=data.get("seed"),
            backend=backend,
        )

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "predictors": [p.as_dict() for p in self.predictors],
            "estimators": [e.as_dict() for e in self.estimators],
            "traces": list(self.traces),
            "n_branches": self.n_branches,
            "warmup_branches": self.warmup_branches,
            "adaptive": self.adaptive,
            "target_mkp": self.target_mkp,
            "seed": self.seed,
        }

    def spec_hash(self) -> str:
        """Digest of the whole sweep (cache manifests, reports)."""
        return stable_digest(self.as_dict())

    def derive_job_seed(self, predictor: PredictorSpec, estimator: EstimatorSpec,
                        trace: str) -> int | None:
        """Deterministic per-cell 32-bit seed (``None`` when unseeded).

        CRC-32 of the base seed and the cell coordinates: cheap, stable
        across processes and Python versions, and independent of the
        order cells are expanded or executed in.
        """
        if self.seed is None:
            return None
        key = canonical_json(
            [self.seed, predictor.as_dict(), estimator.as_dict(), trace]
        )
        return zlib.crc32(key.encode()) & 0xFFFFFFFF
