"""Sweep results: one record per job, tidy-table aggregation on top.

:class:`JobResult` pairs the executed :class:`JobSpec` with the engine's
:class:`~repro.sim.engine.SimulationResult` and — whenever the estimator
provides or implies a high/low split — the pooled
:class:`~repro.confidence.metrics.BinaryConfidenceMetrics`.  Everything
is plain picklable data so results cross process boundaries and land in
the on-disk cache unchanged.

:class:`ResultTable` is the aggregation surface the benches, CLI and
examples consume: tidy rows (one dict per job), grouping by any column,
per-group :class:`~repro.sim.stats.SuiteSummary` pooling, and pooled
binary confusion — the two aggregate families of the paper's §4.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Iterator

from repro.confidence.metrics import BinaryConfidenceMetrics
from repro.sim.engine import SimulationResult
from repro.sim.stats import SuiteSummary, summarize
from repro.sweep.spec import JobSpec

__all__ = ["JobResult", "ResultTable"]

#: Columns of :meth:`JobResult.row`, in render order.
ROW_COLUMNS = (
    "trace",
    "predictor",
    "estimator",
    "n_branches",
    "mpki",
    "mkp",
    "accuracy",
    "storage_bits",
    "estimator_bits",
    "sens",
    "pvp",
    "spec",
    "pvn",
)


@dataclass(frozen=True)
class JobResult:
    """Outcome of one executed grid cell.

    Attributes:
        job: the cell that produced this result.
        result: full engine result (per-class breakdown included for the
            TAGE observation estimator).
        binary: 2×2 high/low confusion — native for the binary
            estimators, derived from the three confidence levels (high
            vs medium|low) for TAGE observation.
        estimator_bits: estimator storage cost (the paper's argument:
            0 for the storage-free estimators).
        elapsed: simulation wall-clock seconds (execution process).
        from_cache: True when served by the on-disk result cache.
    """

    job: JobSpec
    result: SimulationResult
    binary: BinaryConfidenceMetrics | None = None
    estimator_bits: int = 0
    elapsed: float = 0.0
    from_cache: bool = field(default=False, compare=False)

    def cached(self) -> "JobResult":
        """This result marked as a cache hit."""
        return replace(self, from_cache=True)

    def row(self) -> dict:
        """Tidy-table row: axes first, then metrics (None when N/A)."""
        binary = self.binary
        return {
            "trace": self.job.trace,
            "predictor": self.job.predictor.label,
            "estimator": self.job.estimator.label,
            "n_branches": self.job.n_branches,
            "mpki": self.result.mpki,
            "mkp": self.result.mkp,
            "accuracy": self.result.accuracy,
            "storage_bits": self.result.storage_bits,
            "estimator_bits": self.estimator_bits,
            "sens": binary.sens if binary else None,
            "pvp": binary.pvp if binary else None,
            "spec": binary.spec if binary else None,
            "pvn": binary.pvn if binary else None,
        }


class ResultTable:
    """An ordered collection of :class:`JobResult` with tidy aggregation."""

    def __init__(self, results: Iterable[JobResult]) -> None:
        self._results: list[JobResult] = list(results)

    def __len__(self) -> int:
        return len(self._results)

    def __iter__(self) -> Iterator[JobResult]:
        return iter(self._results)

    def __getitem__(self, index: int) -> JobResult:
        return self._results[index]

    # -- tidy access ---------------------------------------------------

    @property
    def columns(self) -> tuple[str, ...]:
        return ROW_COLUMNS

    def rows(self) -> list[dict]:
        """One tidy dict per job, in grid order."""
        return [result.row() for result in self._results]

    def to_tsv(self) -> str:
        """Tab-separated tidy table (spreadsheet / pandas-friendly)."""
        lines = ["\t".join(ROW_COLUMNS)]
        for row in self.rows():
            cells = []
            for column in ROW_COLUMNS:
                value = row[column]
                if value is None:
                    cells.append("")
                elif isinstance(value, float):
                    cells.append(f"{value:.6g}")
                else:
                    cells.append(str(value))
            lines.append("\t".join(cells))
        return "\n".join(lines)

    # -- selection and grouping ----------------------------------------

    def filter(self, predicate: Callable[[JobResult], bool] | None = None,
               **equals) -> "ResultTable":
        """Subset by a predicate and/or row-column equality keywords.

        >>> table.filter(predictor="tage-64K", estimator="tage")
        """
        selected = []
        for result in self._results:
            if predicate is not None and not predicate(result):
                continue
            row = result.row()
            if all(row.get(key) == value for key, value in equals.items()):
                selected.append(result)
        return ResultTable(selected)

    def group(self, *columns: str) -> dict[tuple, "ResultTable"]:
        """Partition by the given row columns, preserving order."""
        groups: dict[tuple, list[JobResult]] = {}
        for result in self._results:
            row = result.row()
            key = tuple(row[column] for column in columns)
            groups.setdefault(key, []).append(result)
        return {key: ResultTable(results) for key, results in groups.items()}

    # -- engine-level aggregates ---------------------------------------

    def simulation_results(self) -> list[SimulationResult]:
        """The raw engine results, in grid order."""
        return [result.result for result in self._results]

    def summary(self) -> SuiteSummary:
        """Pool every job into one :class:`SuiteSummary` (paper Tables 2/3)."""
        return summarize(self.simulation_results())

    def summaries(self, *columns: str) -> dict[tuple, SuiteSummary]:
        """Per-group pooled summaries, grouped by row columns."""
        return {
            key: table.summary() for key, table in self.group(*columns).items()
        }

    def pooled_binary(self) -> BinaryConfidenceMetrics:
        """Merged 2×2 confusion over every job that has one (paper §4)."""
        pooled = BinaryConfidenceMetrics(0, 0, 0, 0)
        for result in self._results:
            if result.binary is not None:
                pooled = pooled.merged(result.binary)
        return pooled

    # -- cache accounting ----------------------------------------------

    @property
    def n_cached(self) -> int:
        return sum(1 for result in self._results if result.from_cache)

    @property
    def n_executed(self) -> int:
        return len(self._results) - self.n_cached
