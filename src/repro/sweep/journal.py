"""Crash-safe append-only run journals for resumable sweeps.

One sweep run owns one journal file (``<journal_dir>/<run_id>.jsonl``).
Every record is a single canonical-JSON line carrying its own CRC-32,
written with ``O_APPEND`` + ``fsync`` so a crash — worker, broker or
whole-box — can lose at most the final, partially written line.  Replay
(:func:`replay_journal`) tolerates exactly that torn tail: an incomplete
or CRC-failing *final* line is dropped with the state reconstructed from
everything before it, while corruption anywhere earlier raises
:class:`JournalError` (the journal is append-only; a damaged middle
means something other than a crash happened to the file).

The journal records *facts about progress*, not results: completed jobs
are named by index + spec hash, and their payloads live in the
:class:`~repro.sweep.cache.ResultCache` keyed by the same hash.  Resume
is therefore the composition "journal says done" + "cache serves the
bytes" — and stays bit-identical because the cache entry *is* the
original result.

Record types (the ``t`` field):

* ``begin`` — run id, the full :class:`ExperimentSpec` dict, its hash,
  and the per-index job hashes of the expanded grid.
* ``resume`` — appended each time an existing journal is reopened.
* ``done`` / ``retry`` / ``quarantine`` — per-job progress.
* ``interrupt`` — the clean SIGINT/SIGTERM checkpoint.
* ``end`` — the run completed (possibly with quarantined jobs).
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path

from repro.sweep.spec import canonical_json

__all__ = [
    "JournalError",
    "JournalState",
    "RunJournal",
    "journal_path",
    "replay_journal",
]


class JournalError(RuntimeError):
    """The journal is unreadable beyond what a torn tail explains."""


def journal_path(journal_dir: str | os.PathLike, run_id: str) -> Path:
    """Where a run's journal lives: ``<journal_dir>/<run_id>.jsonl``."""
    _validate_run_id(run_id)
    return Path(journal_dir) / f"{run_id}.jsonl"


def _validate_run_id(run_id: str) -> None:
    if not run_id or any(ch in run_id for ch in "/\\\0\n") or run_id.startswith("."):
        raise ValueError(f"invalid run id {run_id!r}")


def _encode_record(record: dict) -> bytes:
    body = canonical_json(record)
    crc = zlib.crc32(body.encode()) & 0xFFFFFFFF
    return canonical_json({**record, "crc": crc}).encode() + b"\n"


def _decode_record(line: bytes) -> dict:
    record = json.loads(line)
    if not isinstance(record, dict):
        raise ValueError("journal record is not an object")
    crc = record.pop("crc", None)
    body = canonical_json(record)
    if crc != zlib.crc32(body.encode()) & 0xFFFFFFFF:
        raise ValueError("journal record CRC mismatch")
    return record


class RunJournal:
    """Writer half: append records for one run, fsync'd by default.

    ``fsync=False`` exists for tests and throwaway runs only — with it a
    crash may lose acknowledged records, which breaks the resume
    guarantee.
    """

    def __init__(self, path: str | os.PathLike, run_id: str,
                 fresh: bool = False, fsync: bool = True) -> None:
        _validate_run_id(run_id)
        self.path = Path(path)
        self.run_id = run_id
        self._fsync = fsync
        self.path.parent.mkdir(parents=True, exist_ok=True)
        flags = os.O_APPEND | os.O_CREAT | os.O_WRONLY
        if fresh and self.path.exists():
            self.path.unlink()
        self._fd = os.open(self.path, flags, 0o644)

    # -- raw append ----------------------------------------------------

    def append(self, record: dict) -> None:
        """Write one record durably (single ``write`` + ``fsync``)."""
        if self._fd is None:
            raise JournalError(f"journal {self.path} is closed")
        os.write(self._fd, _encode_record(record))
        if self._fsync:
            os.fsync(self._fd)

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- typed records -------------------------------------------------

    def begin(self, spec_dict: dict, spec_hash: str,
              job_hashes: list[str]) -> None:
        self.append({
            "t": "begin",
            "run": self.run_id,
            "spec": spec_dict,
            "spec_hash": spec_hash,
            "n_jobs": len(job_hashes),
            "job_hashes": list(job_hashes),
        })

    def resume(self, n_done: int, n_pending: int) -> None:
        self.append({"t": "resume", "done": n_done, "pending": n_pending})

    def job_done(self, index: int, job_hash: str, attempt: int) -> None:
        self.append({"t": "done", "i": index, "h": job_hash, "attempt": attempt})

    def job_retry(self, index: int, attempt: int, kind: str, error: str) -> None:
        self.append({
            "t": "retry", "i": index, "attempt": attempt,
            "kind": kind, "error": error,
        })

    def job_quarantined(self, index: int, job_hash: str, kind: str,
                        error: str, attempts: int) -> None:
        self.append({
            "t": "quarantine", "i": index, "h": job_hash,
            "kind": kind, "error": error, "attempts": attempts,
        })

    def interrupt(self, n_done: int, n_pending: int) -> None:
        self.append({"t": "interrupt", "done": n_done, "pending": n_pending})

    def end(self, n_done: int, n_quarantined: int) -> None:
        self.append({"t": "end", "done": n_done, "quarantined": n_quarantined})


@dataclass
class JournalState:
    """Everything :func:`replay_journal` can reconstruct about a run."""

    run_id: str
    spec_dict: dict | None = None
    spec_hash: str | None = None
    n_jobs: int = 0
    job_hashes: tuple[str, ...] = ()
    done: dict[int, str] = field(default_factory=dict)
    quarantined: dict[int, dict] = field(default_factory=dict)
    retries: list[dict] = field(default_factory=list)
    interrupted: bool = False
    ended: bool = False
    torn_tail: bool = False

    @property
    def pending_indices(self) -> tuple[int, ...]:
        """Grid indices with no ``done`` record, in grid order.

        Quarantined jobs count as pending: a resume gives them a fresh
        chance (their failure may have been environmental); genuinely
        poisoned jobs simply quarantine again.
        """
        return tuple(
            index for index in range(self.n_jobs) if index not in self.done
        )


def replay_journal(path: str | os.PathLike, run_id: str) -> JournalState:
    """Reconstruct a :class:`JournalState`, tolerating a torn tail.

    Raises:
        JournalError: missing file, no ``begin`` record, or corruption
            anywhere before the final line.
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as error:
        raise JournalError(f"cannot read journal {path}: {error}") from None

    state = JournalState(run_id=run_id)
    lines = raw.split(b"\n")
    # A well-formed journal ends with b"" after the final newline; any
    # other final element is a torn tail (crash mid-append).
    if lines and lines[-1] != b"":
        state.torn_tail = True
    body, tail = lines[:-1], lines[-1]
    records = []
    for lineno, line in enumerate(body):
        try:
            records.append(_decode_record(line))
        except ValueError as error:
            if lineno == len(body) - 1 and not tail:
                # A torn write that still got its newline out: the CRC
                # catches it, and as the final line it is droppable.
                state.torn_tail = True
                break
            raise JournalError(
                f"journal {path} corrupt at line {lineno + 1}: {error}"
            ) from None

    for record in records:
        kind = record.get("t")
        if kind == "begin":
            if record.get("run") != run_id:
                raise JournalError(
                    f"journal {path} belongs to run {record.get('run')!r}, "
                    f"not {run_id!r}"
                )
            state.spec_dict = record.get("spec")
            state.spec_hash = record.get("spec_hash")
            state.n_jobs = record.get("n_jobs", 0)
            state.job_hashes = tuple(record.get("job_hashes", ()))
        elif kind == "done":
            state.done[record["i"]] = record["h"]
            state.quarantined.pop(record["i"], None)
        elif kind == "retry":
            state.retries.append(record)
        elif kind == "quarantine":
            state.quarantined[record["i"]] = record
        elif kind == "interrupt":
            state.interrupted = True
        elif kind == "end":
            state.ended = True
        elif kind == "resume":
            state.interrupted = False
        # Unknown record types are skipped: forward compatibility.

    if state.spec_dict is None:
        raise JournalError(f"journal {path} has no begin record")
    return state
