"""The sweep worker process: pull a job, run it, report back.

One worker owns two pipe endpoints handed to it by the broker: a task
connection it reads ``(index, attempt, job)`` assignments from, and a
result connection it writes ``("done" | "failed" | "beat", ...)`` tuples
to.  Per-worker pipes (instead of one shared ``multiprocessing.Queue``)
are a deliberate crash-isolation choice: when a worker is SIGKILLed the
worst it can corrupt is *its own* result pipe — the broker sees the EOF
or the short read, classifies the death, and respawns the slot with
fresh pipes, while every other worker's channel stays intact.

Failure classification happens here, at the raising site, where the
exception type is still known:

* :class:`~repro.sweep.faults.TransientJobError`, ``OSError`` and
  ``MemoryError`` report as ``transient`` — the broker retries them with
  backoff;
* everything else reports as ``deterministic`` — re-running the same
  pure function on the same spec would fail the same way, so the broker
  quarantines the job immediately.

A daemon heartbeat thread writes ``("beat", worker_id)`` every
``heartbeat_interval`` seconds (sharing the result pipe under a lock —
two threads writing one pipe unlocked would interleave frames).  A
worker that stops beating while holding a job is, to the broker,
indistinguishable from a hung one — which is exactly the point: the
injected ``stall`` fault suppresses the heartbeat to rehearse the
silent-straggler re-dispatch path.
"""

from __future__ import annotations

import signal
import threading
import time

from repro.sweep.faults import FaultInjector, TransientJobError

__all__ = ["worker_main", "DEFAULT_HEARTBEAT_INTERVAL"]

#: How often an alive worker proves it: small enough that the broker's
#: default deadline (see BrokerConfig) spans many missed beats.
DEFAULT_HEARTBEAT_INTERVAL = 0.2


def _heartbeat_loop(result_conn, send_lock, worker_id, interval, stop, suppress):
    while not stop.wait(interval):
        if suppress.is_set():
            continue
        try:
            with send_lock:
                result_conn.send(("beat", worker_id))
        except (BrokenPipeError, OSError):
            return  # broker is gone; the main loop will notice too


def worker_main(worker_id: int, task_conn, result_conn,
                heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
                faults_text: str = "") -> None:
    """Process entry point: serve assignments until the None sentinel.

    SIGINT is ignored — interrupt handling (journal checkpoint, worker
    shutdown) belongs to the broker, and a Ctrl-C delivered to the whole
    process group must not take workers down mid-job before the broker
    has checkpointed.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    # Import here, not at module top: the worker only needs the (heavy)
    # engine stack once it actually runs, and keeping the import inside
    # makes the fork cheap even if this module is loaded early.
    from repro.sweep.executor import execute_work

    injector = FaultInjector.parse(faults_text)
    send_lock = threading.Lock()
    stop = threading.Event()
    suppress = threading.Event()
    beat_thread = threading.Thread(
        target=_heartbeat_loop,
        args=(result_conn, send_lock, worker_id, heartbeat_interval,
              stop, suppress),
        daemon=True,
    )
    beat_thread.start()

    try:
        while True:
            try:
                message = task_conn.recv()
            except (EOFError, OSError):
                return  # broker died; nothing to do but exit
            if message is None:
                return
            index, attempt, job = message
            started = time.perf_counter()
            try:
                injector.pre_job(index, attempt, on_stall=suppress.set)
                outcome = execute_work(job)
            except TransientJobError as error:
                report = ("failed", worker_id, index, "transient", str(error))
            except (MemoryError, OSError) as error:
                report = ("failed", worker_id, index, "transient",
                          f"{type(error).__name__}: {error}")
            except Exception as error:  # noqa: BLE001 — classification boundary
                report = ("failed", worker_id, index, "deterministic",
                          f"{type(error).__name__}: {error}")
            else:
                report = ("done", worker_id, index, attempt, outcome,
                          time.perf_counter() - started)
            suppress.clear()
            try:
                with send_lock:
                    result_conn.send(report)
            except (BrokenPipeError, OSError):
                return
    finally:
        stop.set()
