"""Deterministic fault injection for the sweep broker/worker executor.

Every recovery path of :mod:`repro.sweep.broker` — crash retry, straggler
re-dispatch, transient backoff, deterministic quarantine, corrupt-entry
quarantine — is driven here so the chaos tests and the CI chaos gate can
trigger each one on an exact job at an exact attempt, with no timing
races and no randomness.

A fault plan is a semicolon-separated list of directives::

    kind@index[:count[:param]]

* ``kill@3``        — SIGKILL the executing worker before job 3 runs
  (first attempt only; ``kill@3:2`` kills the first two attempts).
* ``stall@5``       — suppress the worker's heartbeat and sleep, so the
  broker sees a silent straggler and re-dispatches after its deadline
  (``stall@5:1:30`` caps the sleep at 30 s).
* ``flaky@1:2``     — raise :class:`TransientJobError` on the first two
  attempts, then succeed: the retry/backoff path.
* ``poison@2``      — raise a deterministic error on every attempt: the
  quarantine path.
* ``corrupt@4``     — after job 4's result is stored, truncate its cache
  entry on disk: the next run/load exercises the cache's corrupt-entry
  quarantine.

The plan travels as plain text — the ``REPRO_FAULTS`` environment
variable or the ``faults=`` argument to ``run_sweep`` — so worker
*processes* reconstruct the same injector from the same string, and an
attempt number in the dispatch message is all the shared state the
"fail N times then succeed" faults need.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass
from typing import Callable

__all__ = [
    "FAULTS_ENV",
    "FaultSpec",
    "FaultInjector",
    "TransientJobError",
    "PoisonedJobError",
]

#: Environment variable carrying the fault plan (CLI, CI chaos job).
FAULTS_ENV = "REPRO_FAULTS"

_KINDS = ("kill", "stall", "flaky", "poison", "corrupt")

#: Default stall sleep; the broker's heartbeat deadline fires long before.
_DEFAULT_STALL_SECONDS = 600.0


class TransientJobError(RuntimeError):
    """A failure worth retrying (injected, or raised by a worker)."""


class PoisonedJobError(RuntimeError):
    """An injected deterministic failure: quarantine, don't retry."""


@dataclass(frozen=True)
class FaultSpec:
    """One parsed directive of a fault plan."""

    kind: str
    index: int
    count: int = 1
    param: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; choose from {_KINDS}"
            )
        if self.index < 0:
            raise ValueError(f"fault index must be >= 0, got {self.index}")
        if self.count < 1:
            raise ValueError(f"fault count must be >= 1, got {self.count}")

    def fires(self, index: int, attempt: int) -> bool:
        """Does this directive trigger for (job index, attempt)?"""
        return index == self.index and attempt < self.count

    def text(self) -> str:
        parts = [f"{self.kind}@{self.index}"]
        if self.count != 1 or self.param is not None:
            parts.append(f":{self.count}")
        if self.param is not None:
            parts.append(f":{self.param:g}")
        return "".join(parts)


def _parse_directive(token: str) -> FaultSpec:
    head, sep, rest = token.partition("@")
    if not sep:
        raise ValueError(
            f"cannot parse fault {token!r}; expected kind@index[:count[:param]]"
        )
    fields = rest.split(":")
    if not 1 <= len(fields) <= 3:
        raise ValueError(f"cannot parse fault {token!r}: too many ':' fields")
    try:
        index = int(fields[0])
        count = int(fields[1]) if len(fields) > 1 else 1
        param = float(fields[2]) if len(fields) > 2 else None
    except ValueError:
        raise ValueError(
            f"cannot parse fault {token!r}: index/count/param must be numeric"
        ) from None
    return FaultSpec(kind=head.strip(), index=index, count=count, param=param)


class FaultInjector:
    """A parsed fault plan with the hooks broker and workers call."""

    def __init__(self, faults: tuple[FaultSpec, ...] = ()) -> None:
        self.faults = tuple(faults)

    @classmethod
    def parse(cls, text: str | None) -> "FaultInjector":
        """Parse a plan string; empty/None means no faults."""
        if not text or not text.strip():
            return cls()
        return cls(tuple(
            _parse_directive(token.strip())
            for token in text.split(";") if token.strip()
        ))

    @classmethod
    def from_env(cls, environ=None) -> "FaultInjector":
        return cls.parse((environ or os.environ).get(FAULTS_ENV))

    def text(self) -> str:
        """Round-trippable plan string (how the plan reaches workers)."""
        return ";".join(fault.text() for fault in self.faults)

    def __bool__(self) -> bool:
        return bool(self.faults)

    # -- pure predicates (unit-testable without killing anything) ------

    def _firing(self, kind: str, index: int, attempt: int) -> FaultSpec | None:
        for fault in self.faults:
            if fault.kind == kind and fault.fires(index, attempt):
                return fault
        return None

    def kills(self, index: int, attempt: int) -> bool:
        return self._firing("kill", index, attempt) is not None

    def stalls(self, index: int, attempt: int) -> FaultSpec | None:
        return self._firing("stall", index, attempt)

    def corrupts(self, index: int, attempt: int) -> bool:
        return self._firing("corrupt", index, attempt) is not None

    # -- worker-side hook ----------------------------------------------

    def pre_job(self, index: int, attempt: int,
                on_stall: Callable[[], None] | None = None) -> None:
        """Fire any fault planned for this (job, attempt) — called in the
        worker immediately before execution.

        ``on_stall`` runs before the stall sleep (the worker uses it to
        suppress its heartbeat, making the stall *silent*).
        """
        if self.kills(index, attempt):
            os.kill(os.getpid(), signal.SIGKILL)
        stall = self.stalls(index, attempt)
        if stall is not None:
            if on_stall is not None:
                on_stall()
            time.sleep(stall.param or _DEFAULT_STALL_SECONDS)
            raise TransientJobError(
                f"injected stall on job {index} attempt {attempt} outlived "
                "its sleep without being re-dispatched"
            )
        if self._firing("flaky", index, attempt) is not None:
            raise TransientJobError(
                f"injected transient failure on job {index} attempt {attempt}"
            )
        if self._firing("poison", index, attempt) is not None:
            raise PoisonedJobError(f"injected deterministic failure on job {index}")

    # -- broker-side hook ----------------------------------------------

    def post_store(self, index: int, attempt: int, path) -> bool:
        """Truncate a just-stored cache entry if a corrupt fault fires.

        Returns True when the entry was corrupted (so the broker can log
        it).  Truncating to half leaves a well-formed-looking but
        unpicklable file — the realistic torn-write shape.
        """
        if not self.corrupts(index, attempt) or path is None:
            return False
        try:
            size = os.path.getsize(path)
            with open(path, "r+b") as handle:
                handle.truncate(max(1, size // 2))
        except OSError:
            return False
        return True
